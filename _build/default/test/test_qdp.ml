module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr
module Subset = Qdp.Subset

let geom = Geometry.create [| 4; 4; 4; 4 |]
let rng = Prng.create ~seed:31L

let fermion () =
  let f = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian f rng;
  f

let cmatrix () =
  let f = Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  Field.fill_gaussian f rng;
  f

(* ---------------------------- field basics --------------------------- *)

let test_field_get_set () =
  let f = fermion () in
  Field.set f ~site:3 ~spin:2 ~color:1 ~reality:1 5.5;
  Alcotest.(check (float 0.0)) "get" 5.5 (Field.get f ~site:3 ~spin:2 ~color:1 ~reality:1)

let test_field_site_roundtrip () =
  let f = fermion () in
  let v = Field.get_site f ~site:10 in
  Field.set_site f ~site:11 v;
  Alcotest.(check bool) "site copy" true (Field.get_site f ~site:11 = v)

let test_fill_gaussian_decomposition_independent () =
  (* Two fields filled with the same site_key mapping get the same content. *)
  let a = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let b = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian a (Prng.create ~seed:5L);
  Field.fill_gaussian b (Prng.create ~seed:5L);
  Alcotest.(check bool) "same noise" true (Field.get_site a ~site:77 = Field.get_site b ~site:77)

let test_version_bumps () =
  let f = fermion () in
  let v0 = f.Field.version in
  Field.set f ~site:0 ~spin:0 ~color:0 ~reality:0 1.0;
  Alcotest.(check bool) "bump" true (f.Field.version > v0)

(* ------------------------- shape inference --------------------------- *)

let test_expr_shapes () =
  let u = cmatrix () and psi = fermion () in
  let e = Expr.mul (Expr.field u) (Expr.field psi) in
  Alcotest.(check bool) "u*psi fermion" true
    (Shape.equal (Expr.shape e) (Shape.lattice_fermion Shape.F64));
  let tr = Expr.real (Expr.trace_color (Expr.mul (Expr.field u) (Expr.field u))) in
  Alcotest.(check bool) "trace real scalar" true
    (Shape.equal (Expr.shape tr) (Shape.real_scalar Shape.F64))

let test_expr_type_errors () =
  let u = cmatrix () and psi = fermion () in
  (match Expr.mul (Expr.field psi) (Expr.field u) with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "psi*u accepted");
  (match Expr.add (Expr.field psi) (Expr.field u) with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "psi+u accepted");
  match Expr.trace_color (Expr.field psi) with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "trace of vector accepted"

let test_precision_promotion () =
  let a32 = Field.create (Shape.lattice_fermion Shape.F32) geom in
  let b64 = fermion () in
  let e = Expr.add (Expr.field a32) (Expr.field b64) in
  Alcotest.(check bool) "promoted to f64" true ((Expr.shape e).Shape.prec = Shape.F64)

let test_leaves_dedup () =
  let u = cmatrix () and psi = fermion () in
  let e = Expr.add (Expr.mul (Expr.field u) (Expr.field psi)) (Expr.mul (Expr.field u) (Expr.field psi)) in
  Alcotest.(check int) "two distinct leaves" 2 (List.length (Expr.leaves e))

let test_structure_key_field_independent () =
  let u1 = cmatrix () and u2 = cmatrix () and psi1 = fermion () and psi2 = fermion () in
  let sh = Expr.shape (Expr.mul (Expr.field u1) (Expr.field psi1)) in
  let k1 = Expr.structure_key ~dest_shape:sh (Expr.mul (Expr.field u1) (Expr.field psi1)) in
  let k2 = Expr.structure_key ~dest_shape:sh (Expr.mul (Expr.field u2) (Expr.field psi2)) in
  Alcotest.(check string) "same structure, same key" k1 k2;
  let k3 = Expr.structure_key ~dest_shape:sh (Expr.mul (Expr.adj (Expr.field u1)) (Expr.field psi1)) in
  Alcotest.(check bool) "adj changes key" true (k1 <> k3)

let test_param_key_value_independent () =
  let psi = fermion () in
  let sh = Expr.shape (Expr.field psi) in
  let k v = Expr.structure_key ~dest_shape:sh (Expr.mul (Expr.const_real v) (Expr.field psi)) in
  Alcotest.(check string) "scalar params erased from key" (k 1.5) (k 2.5)

let test_shift_dirs () =
  let psi = fermion () in
  let e =
    Expr.add
      (Expr.shift (Expr.field psi) ~dim:0 ~dir:1)
      (Expr.shift (Expr.shift (Expr.field psi) ~dim:2 ~dir:(-1)) ~dim:0 ~dir:1)
  in
  Alcotest.(check bool) "dirs found" true (Expr.shift_dirs e = [ (0, 1); (2, -1) ])

(* ------------------------------ eval --------------------------------- *)

let test_eval_identity_mul () =
  let psi = fermion () in
  let ident = Field.create (Shape.lattice_color_matrix Shape.F64) geom in
  for site = 0 to Geometry.volume geom - 1 do
    Field.set_site ident ~site (Linalg.Su3.identity ())
  done;
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval out (Expr.mul (Expr.field ident) (Expr.field psi));
  for site = 0 to Geometry.volume geom - 1 do
    if Field.get_site out ~site <> Field.get_site psi ~site then
      Alcotest.failf "identity multiplication changed site %d" site
  done

let test_eval_shift_semantics () =
  let psi = fermion () in
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval out (Expr.shift (Expr.field psi) ~dim:1 ~dir:1);
  for site = 0 to Geometry.volume geom - 1 do
    let src = Geometry.neighbor geom site ~dim:1 ~dir:1 in
    if Field.get_site out ~site <> Field.get_site psi ~site:src then
      Alcotest.failf "shift wrong at site %d" site
  done

let test_shift_inverse () =
  let psi = fermion () in
  let tmp = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval tmp (Expr.shift (Expr.field psi) ~dim:3 ~dir:1);
  Qdp.Eval_cpu.eval out (Expr.shift (Expr.field tmp) ~dim:3 ~dir:(-1));
  let d = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field out) (Expr.field psi)) in
  Alcotest.(check (float 0.0)) "shift then unshift" 0.0 d

let test_subset_eval () =
  let psi = fermion () in
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_constant out 9.0;
  Qdp.Eval_cpu.eval ~subset:Subset.Even out (Expr.field psi);
  Array.iter
    (fun site ->
      if Field.get_site out ~site <> Field.get_site psi ~site then
        Alcotest.failf "even site %d not written" site)
    (Subset.sites geom Subset.Even);
  Array.iter
    (fun site ->
      if Field.get out ~site ~spin:0 ~color:0 ~reality:0 <> 9.0 then
        Alcotest.failf "odd site %d overwritten" site)
    (Subset.sites geom Subset.Odd)

let test_norm2_manual () =
  let psi = fermion () in
  let manual = ref 0.0 in
  for site = 0 to Geometry.volume geom - 1 do
    Array.iter (fun x -> manual := !manual +. (x *. x)) (Field.get_site psi ~site)
  done;
  Alcotest.(check (float 1e-6)) "norm2" !manual (Qdp.Eval_cpu.norm2 (Expr.field psi))

let test_inner_conjugate_symmetry () =
  let a = fermion () and b = fermion () in
  let re1, im1 = Qdp.Eval_cpu.inner (Expr.field a) (Expr.field b) in
  let re2, im2 = Qdp.Eval_cpu.inner (Expr.field b) (Expr.field a) in
  Alcotest.(check (float 1e-9)) "re symmetric" re1 re2;
  Alcotest.(check (float 1e-9)) "im antisymmetric" im1 (-.im2)

let test_sum_components_linear () =
  let a = fermion () in
  let s1 = Qdp.Eval_cpu.sum_components (Expr.field a) in
  let s2 = Qdp.Eval_cpu.sum_components (Expr.mul (Expr.const_real 2.0) (Expr.field a)) in
  Array.iteri (fun i x -> Alcotest.(check (float 1e-9)) "linear" (2.0 *. x) s2.(i)) s1

(* a random well-typed expression generator for property tests *)
let rec random_expr depth fields =
  let u, _psi = fields in
  if depth = 0 then
    match Prng.int_below rng 3 with
    | 0 -> Expr.field u
    | 1 -> Expr.mul (Expr.field u) (Expr.field u)
    | _ -> Expr.adj (Expr.field u)
  else
    match Prng.int_below rng 5 with
    | 0 -> Expr.add (random_expr (depth - 1) fields) (random_expr (depth - 1) fields)
    | 1 -> Expr.mul (random_expr (depth - 1) fields) (random_expr (depth - 1) fields)
    | 2 -> Expr.adj (random_expr (depth - 1) fields)
    | 3 -> Expr.shift (random_expr (depth - 1) fields) ~dim:(Prng.int_below rng 4) ~dir:1
    | _ -> Expr.neg (random_expr (depth - 1) fields)

let test_random_exprs_shape_stable () =
  let u = cmatrix () and psi = fermion () in
  for _ = 1 to 50 do
    let e = random_expr 3 (u, psi) in
    (* shape inference must agree with actual evaluation *)
    let sh = Expr.shape e in
    let out = Field.create sh geom in
    Qdp.Eval_cpu.eval out e;
    Alcotest.(check bool) "evaluates" true (Field.volume out = Geometry.volume geom)
  done

let () =
  Alcotest.run "qdp"
    [
      ( "field",
        [
          Alcotest.test_case "get/set" `Quick test_field_get_set;
          Alcotest.test_case "site roundtrip" `Quick test_field_site_roundtrip;
          Alcotest.test_case "reproducible noise" `Quick test_fill_gaussian_decomposition_independent;
          Alcotest.test_case "version bump" `Quick test_version_bumps;
        ] );
      ( "expr",
        [
          Alcotest.test_case "shape inference" `Quick test_expr_shapes;
          Alcotest.test_case "type errors" `Quick test_expr_type_errors;
          Alcotest.test_case "precision promotion" `Quick test_precision_promotion;
          Alcotest.test_case "leaf dedup" `Quick test_leaves_dedup;
          Alcotest.test_case "structure key" `Quick test_structure_key_field_independent;
          Alcotest.test_case "param values erased" `Quick test_param_key_value_independent;
          Alcotest.test_case "shift dirs" `Quick test_shift_dirs;
        ] );
      ( "eval",
        [
          Alcotest.test_case "identity mul" `Quick test_eval_identity_mul;
          Alcotest.test_case "shift semantics" `Quick test_eval_shift_semantics;
          Alcotest.test_case "shift inverse" `Quick test_shift_inverse;
          Alcotest.test_case "subset eval" `Quick test_subset_eval;
          Alcotest.test_case "norm2 manual" `Quick test_norm2_manual;
          Alcotest.test_case "inner symmetry" `Quick test_inner_conjugate_symmetry;
          Alcotest.test_case "sum linear" `Quick test_sum_components_linear;
          Alcotest.test_case "random exprs" `Quick test_random_exprs_shape_stable;
        ] );
    ]
