let checkf tol = Alcotest.check (Alcotest.float tol)

(* ----------------------------- Linsolve ----------------------------- *)

let test_solve_small () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 5.0; 10.0 |] in
  let x = Numerics.Linsolve.solve a b in
  checkf 1e-12 "x0" 1.0 x.(0);
  checkf 1e-12 "x1" 3.0 x.(1)

let test_solve_random_residual () =
  let rng = Prng.create ~seed:1L in
  for n = 1 to 12 do
    let a = Array.init n (fun _ -> Array.init n (fun _ -> Prng.gaussian rng)) in
    let b = Array.init n (fun _ -> Prng.gaussian rng) in
    let x = Numerics.Linsolve.solve a b in
    let r = Numerics.Linsolve.residual_norm a x b in
    if r > 1e-9 then Alcotest.failf "residual too large at n=%d: %g" n r
  done

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Numerics.Linsolve.Singular (fun () ->
      ignore (Numerics.Linsolve.solve a [| 1.0; 1.0 |]))

let test_solve_needs_pivoting () =
  (* Zero on the first pivot: succeeds only with row exchange. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Numerics.Linsolve.solve a [| 2.0; 3.0 |] in
  checkf 1e-14 "x0" 3.0 x.(0);
  checkf 1e-14 "x1" 2.0 x.(1)

let test_lstsq () =
  (* Overdetermined consistent system. *)
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let b = [| 1.0; 2.0; 3.0 |] in
  let x = Numerics.Linsolve.lstsq a b in
  checkf 1e-10 "x0" 1.0 x.(0);
  checkf 1e-10 "x1" 2.0 x.(1)

(* ------------------------------- Poly ------------------------------- *)

let test_poly_eval () =
  let p = [| 1.0; -2.0; 3.0 |] in
  checkf 1e-14 "horner" ((3.0 *. 4.0) -. (2.0 *. 2.0) +. 1.0) (Numerics.Poly.eval p 2.0)

let test_poly_derivative () =
  let p = [| 5.0; 1.0; -2.0; 3.0 |] in
  let p' = Numerics.Poly.derivative p in
  checkf 1e-14 "d/dx" (1.0 -. (4.0 *. 2.0) +. (9.0 *. 4.0)) (Numerics.Poly.eval p' 2.0)

let test_poly_roots_simple () =
  let p = Numerics.Poly.of_roots [| 1.0; 2.0; 3.0 |] in
  let rs = Numerics.Poly.real_roots p in
  Alcotest.(check int) "count" 3 (Array.length rs);
  checkf 1e-8 "r0" 1.0 rs.(0);
  checkf 1e-8 "r1" 2.0 rs.(1);
  checkf 1e-8 "r2" 3.0 rs.(2)

let test_poly_roots_spread () =
  (* Geometrically spread roots, the Remez denominator case (real_roots
     returns them ascending). *)
  let roots = [| -1e4; -1e2; -1.0; -1e-2; -1e-4 |] in
  let p = Numerics.Poly.of_roots roots in
  let rs = Numerics.Poly.real_roots p in
  Alcotest.(check int) "count" 5 (Array.length rs);
  Array.iteri (fun i _ -> checkf (1e-6 *. abs_float roots.(i)) "root" roots.(i) rs.(i)) rs

let test_durand_kerner_complex () =
  (* x^2 + 1: roots +-i. *)
  let zs = Numerics.Poly.roots [| 1.0; 0.0; 1.0 |] in
  Alcotest.(check int) "count" 2 (Array.length zs);
  Array.iter
    (fun z ->
      checkf 1e-10 "re" 0.0 z.Complex.re;
      checkf 1e-10 "|im|" 1.0 (abs_float z.Complex.im))
    zs

(* ------------------------------ Ratfun ------------------------------ *)

let test_quadrature_inv_sqrt () =
  let r = Numerics.Ratfun.of_quadrature ~sigma:0.5 ~points:120 ~lo:0.01 ~hi:10.0 in
  let err = Numerics.Ratfun.max_rel_error r ~exponent:(-0.5) ~lo:0.01 ~hi:10.0 ~samples:500 in
  if err > 1e-8 then Alcotest.failf "quadrature error too large: %g" err

let test_quadrature_positive_power () =
  (* The x^(1-s) = x^(3/4) route has a narrower analyticity strip, so the
     trapezoid needs a finer step for the same accuracy. *)
  let r = Numerics.Ratfun.of_quadrature_pow ~sigma:0.25 ~points:250 ~lo:0.01 ~hi:10.0 in
  let err = Numerics.Ratfun.max_rel_error r ~exponent:0.25 ~lo:0.01 ~hi:10.0 ~samples:500 in
  if err > 1e-5 then Alcotest.failf "x^(1/4) quadrature error too large: %g" err

let test_quadrature_converges_with_points () =
  let err points =
    let r = Numerics.Ratfun.of_quadrature_pow ~sigma:0.25 ~points ~lo:0.01 ~hi:10.0 in
    Numerics.Ratfun.max_rel_error r ~exponent:0.25 ~lo:0.01 ~hi:10.0 ~samples:300
  in
  Alcotest.(check bool) "more points, smaller error" true (err 250 < err 120 /. 5.0)

let test_quadrature_positive_shifts () =
  let r = Numerics.Ratfun.of_quadrature ~sigma:0.5 ~points:60 ~lo:0.1 ~hi:1.0 in
  Array.iter
    (fun (alpha, beta) ->
      if alpha <= 0.0 then Alcotest.failf "negative residue %g" alpha;
      if beta <= 0.0 then Alcotest.failf "negative shift %g" beta)
    r.Numerics.Ratfun.terms

let test_x_times () =
  let r = Numerics.Ratfun.of_quadrature ~sigma:0.5 ~points:80 ~lo:0.1 ~hi:10.0 in
  let xr = Numerics.Ratfun.x_times r in
  List.iter
    (fun x ->
      checkf 1e-6 "x*r(x)" (x *. Numerics.Ratfun.eval r x) (Numerics.Ratfun.eval xr x))
    [ 0.13; 0.7; 2.0; 9.0 ]

(* ------------------------------- Remez ------------------------------ *)

let test_remez_sqrt () =
  let r = Numerics.Remez.approx ~sigma:0.5 ~degree:6 ~lo:0.01 ~hi:10.0 in
  if r.Numerics.Remez.error > 5e-5 then
    Alcotest.failf "remez error too large: %g" r.Numerics.Remez.error;
  let verify = Numerics.Remez.check_equioscillation r ~samples:2000 in
  if verify > 1.2 *. r.Numerics.Remez.error +. 1e-12 then
    Alcotest.failf "claimed error %g but measured %g" r.Numerics.Remez.error verify

let test_remez_pfe_consistency () =
  let r = Numerics.Remez.approx ~sigma:0.5 ~degree:5 ~lo:0.1 ~hi:10.0 in
  List.iter
    (fun x ->
      let direct = Numerics.Remez.eval r x in
      checkf (1e-10 *. direct) "pfe = num/den" direct (Numerics.Ratfun.eval r.Numerics.Remez.pfe x);
      let inv = Numerics.Ratfun.eval r.Numerics.Remez.pfe_inv x in
      checkf (2.0 *. r.Numerics.Remez.error +. 1e-9) "pfe_inv ~ x^-s" 1.0 (inv *. (x ** 0.5)))
    [ 0.11; 0.5; 2.0; 9.5 ]

let test_remez_negative_sigma () =
  let r = Numerics.Remez.approx ~sigma:(-0.5) ~degree:6 ~lo:0.05 ~hi:5.0 in
  let err = Numerics.Ratfun.max_rel_error r.Numerics.Remez.pfe ~exponent:(-0.5) ~lo:0.05 ~hi:5.0 ~samples:500 in
  if err > 1e-4 then Alcotest.failf "x^-1/2 remez error: %g" err

let test_remez_rejects_bad_args () =
  Alcotest.check_raises "sigma out of range"
    (Invalid_argument "Remez.approx: need 0 < |sigma| < 1") (fun () ->
      ignore (Numerics.Remez.approx ~sigma:1.5 ~degree:4 ~lo:0.1 ~hi:1.0));
  Alcotest.check_raises "bad interval" (Invalid_argument "Remez.approx: need 0 < lo < hi")
    (fun () -> ignore (Numerics.Remez.approx ~sigma:0.5 ~degree:4 ~lo:1.0 ~hi:0.1))

(* ----------------------------- Zolotarev ---------------------------- *)

let test_zolotarev_accuracy () =
  List.iter
    (fun (deg, lo, hi, bound) ->
      let err = Numerics.Zolotarev.theoretical_error ~degree:deg ~lo ~hi in
      if err > bound then Alcotest.failf "zolotarev deg=%d [%g,%g]: %g > %g" deg lo hi err bound)
    [ (4, 0.01, 10.0, 1e-3); (8, 0.01, 10.0, 1e-6); (12, 1e-6, 100.0, 1e-4); (16, 1e-6, 100.0, 1e-6) ]

let test_zolotarev_sqrt_matches_inverse () =
  let s = Numerics.Zolotarev.sqrt_ ~degree:8 ~lo:0.01 ~hi:10.0 in
  let err = Numerics.Ratfun.max_rel_error s ~exponent:0.5 ~lo:0.01 ~hi:10.0 ~samples:500 in
  if err > 1e-6 then Alcotest.failf "sqrt error: %g" err

let test_zolotarev_beats_or_matches_remez () =
  (* Zolotarev is optimal: Remez at the same degree cannot do better. *)
  let deg = 5 and lo = 0.1 and hi = 10.0 in
  let z = Numerics.Zolotarev.theoretical_error ~degree:deg ~lo ~hi in
  let r = Numerics.Remez.approx ~sigma:(-0.5) ~degree:deg ~lo ~hi in
  if r.Numerics.Remez.error < z *. 0.9 then
    Alcotest.failf "remez %g beat optimal zolotarev %g" r.Numerics.Remez.error z

let test_elliptic_identities () =
  let k = 0.8 in
  List.iter
    (fun u ->
      let sn, cn, dn = Numerics.Zolotarev.Elliptic.sn_cn_dn ~u ~k in
      checkf 1e-12 "sn^2+cn^2" 1.0 ((sn *. sn) +. (cn *. cn));
      checkf 1e-12 "dn identity" 1.0 ((dn *. dn) +. (k *. k *. sn *. sn)))
    [ 0.1; 0.5; 1.0; 1.7 ];
  (* K(0) = pi/2 *)
  checkf 1e-12 "K(0)" (Float.pi /. 2.0) (Numerics.Zolotarev.Elliptic.complete_k 0.0);
  (* Known value: K(1/sqrt 2) = 1.8540746773... *)
  checkf 1e-9 "K(1/sqrt2)" 1.854074677301372
    (Numerics.Zolotarev.Elliptic.complete_k (1.0 /. sqrt 2.0))

(* ----------------------------- Dd ----------------------------------- *)

let test_dd_arithmetic () =
  let open Numerics.Dd in
  let a = of_float 1.0 in
  let eps = of_float 1e-20 in
  (* 1 + 1e-20 - 1 = 1e-20 survives in double-double, dies in double. *)
  let r = sub (add a eps) a in
  checkf 1e-30 "tiny survives" 1e-20 (to_float r);
  let x = div (of_float 1.0) (of_float 3.0) in
  let back = mul x (of_float 3.0) in
  checkf 1e-30 "1/3*3" 1.0 (to_float back)

let test_dd_solve_hilbert () =
  (* Hilbert 8x8: condition ~1e10; dd solve should hit ~1e-12 residual
     where plain double leaves ~1e-6-ish errors in x. *)
  let n = 8 in
  let a = Array.init n (fun i -> Array.init n (fun j -> 1.0 /. float_of_int (i + j + 1))) in
  let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
  let b = Numerics.Linsolve.mat_vec a x_true in
  let x = Numerics.Dd.solve_float a b in
  Array.iteri (fun i xi -> checkf 1e-4 "hilbert solution" x_true.(i) xi) x

(* ----------------------------- Stats -------------------------------- *)

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf 1e-14 "mean" 2.5 (Numerics.Stats.mean xs);
  checkf 1e-14 "variance" (5.0 /. 3.0) (Numerics.Stats.variance xs);
  let lo, hi = Numerics.Stats.min_max xs in
  checkf 0.0 "min" 1.0 lo;
  checkf 0.0 "max" 4.0 hi;
  let slope, intercept = Numerics.Stats.linear_fit [| 0.0; 1.0; 2.0 |] [| 1.0; 3.0; 5.0 |] in
  checkf 1e-12 "slope" 2.0 slope;
  checkf 1e-12 "intercept" 1.0 intercept

let test_jackknife () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let est, err = Numerics.Stats.jackknife Numerics.Stats.mean xs in
  checkf 1e-12 "estimate" 24.5 est;
  (* Jackknife error of the mean equals the standard error. *)
  checkf 1e-10 "error" (Numerics.Stats.std_error xs) err

let () =
  Alcotest.run "numerics"
    [
      ( "linsolve",
        [
          Alcotest.test_case "2x2" `Quick test_solve_small;
          Alcotest.test_case "random residuals" `Quick test_solve_random_residual;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          Alcotest.test_case "pivoting" `Quick test_solve_needs_pivoting;
          Alcotest.test_case "lstsq" `Quick test_lstsq;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "roots simple" `Quick test_poly_roots_simple;
          Alcotest.test_case "roots spread" `Quick test_poly_roots_spread;
          Alcotest.test_case "complex roots" `Quick test_durand_kerner_complex;
        ] );
      ( "ratfun",
        [
          Alcotest.test_case "quadrature x^-1/2" `Quick test_quadrature_inv_sqrt;
          Alcotest.test_case "quadrature x^+1/4" `Quick test_quadrature_positive_power;
          Alcotest.test_case "quadrature convergence" `Quick test_quadrature_converges_with_points;
          Alcotest.test_case "positive shifts" `Quick test_quadrature_positive_shifts;
          Alcotest.test_case "x_times" `Quick test_x_times;
        ] );
      ( "remez",
        [
          Alcotest.test_case "sqrt accuracy" `Quick test_remez_sqrt;
          Alcotest.test_case "pfe consistency" `Quick test_remez_pfe_consistency;
          Alcotest.test_case "negative sigma" `Quick test_remez_negative_sigma;
          Alcotest.test_case "argument validation" `Quick test_remez_rejects_bad_args;
        ] );
      ( "zolotarev",
        [
          Alcotest.test_case "accuracy" `Quick test_zolotarev_accuracy;
          Alcotest.test_case "sqrt from inverse" `Quick test_zolotarev_sqrt_matches_inverse;
          Alcotest.test_case "optimality vs remez" `Quick test_zolotarev_beats_or_matches_remez;
          Alcotest.test_case "elliptic identities" `Quick test_elliptic_identities;
        ] );
      ( "dd",
        [
          Alcotest.test_case "arithmetic" `Quick test_dd_arithmetic;
          Alcotest.test_case "hilbert solve" `Quick test_dd_solve_hilbert;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats;
          Alcotest.test_case "jackknife" `Quick test_jackknife;
        ] );
    ]
