module Shape = Layout.Shape
module FSite = Linalg.Site.Make (Linalg.Scalar.Float_scalar)
module Su3 = Linalg.Su3

let rng = Prng.create ~seed:77L

let random_value shape =
  FSite.of_floats shape (Array.init (Shape.dof shape) (fun _ -> Prng.gaussian rng))

let cm = Shape.lattice_color_matrix Shape.F64
let fm = Shape.lattice_fermion Shape.F64
let sm = Shape.lattice_spin_matrix Shape.F64

let value_close ?(tol = 1e-12) name (a : FSite.value) (b : FSite.value) =
  if not (Shape.equal a.FSite.shape b.FSite.shape) then Alcotest.failf "%s: shape mismatch" name;
  Array.iteri
    (fun i x ->
      if abs_float (x -. b.FSite.data.(i)) > tol then
        Alcotest.failf "%s: component %d: %g vs %g" name i x b.FSite.data.(i))
    a.FSite.data

(* --------------------------- site algebra --------------------------- *)

let test_add_commutes () =
  let a = random_value fm and b = random_value fm in
  value_close "a+b = b+a" (FSite.add a b) (FSite.add b a)

let test_mul_associative () =
  let a = random_value cm and b = random_value cm and c = random_value cm in
  value_close ~tol:1e-10 "(ab)c = a(bc)" (FSite.mul (FSite.mul a b) c) (FSite.mul a (FSite.mul b c))

let test_mul_distributes () =
  let a = random_value cm and b = random_value fm and c = random_value fm in
  value_close ~tol:1e-10 "a(b+c) = ab+ac"
    (FSite.mul a (FSite.add b c))
    (FSite.add (FSite.mul a b) (FSite.mul a c))

let test_adj_antihomomorphism () =
  let a = random_value cm and b = random_value cm in
  value_close ~tol:1e-10 "adj(ab) = adj(b) adj(a)"
    (FSite.adj (FSite.mul a b))
    (FSite.mul (FSite.adj b) (FSite.adj a))

let test_adj_involution () =
  let a = random_value sm in
  value_close "adj adj = id" a (FSite.adj (FSite.adj a))

let test_transpose_conj_is_adj () =
  let a = random_value cm in
  value_close "transpose . conj = adj" (FSite.adj a) (FSite.transpose (FSite.conj a))

let test_times_i () =
  let a = random_value fm in
  (* i * (i * a) = -a *)
  value_close "i*i*a = -a" (FSite.neg a) (FSite.times_i (FSite.times_i a))

let test_trace_cyclic () =
  let a = random_value cm and b = random_value cm in
  value_close ~tol:1e-10 "tr(ab) = tr(ba)"
    (FSite.trace_color (FSite.mul a b))
    (FSite.trace_color (FSite.mul b a))

let test_trace_spin () =
  let a = random_value sm in
  let tr = FSite.trace_spin a in
  (* diag sum by hand: spin matrix component (i,i) is spin index 4i+i *)
  let expect_re = ref 0.0 and expect_im = ref 0.0 in
  for i = 0 to 3 do
    expect_re := !expect_re +. a.FSite.data.(2 * ((4 * i) + i));
    expect_im := !expect_im +. a.FSite.data.((2 * ((4 * i) + i)) + 1)
  done;
  Alcotest.(check (float 1e-12)) "re" !expect_re tr.FSite.data.(0);
  Alcotest.(check (float 1e-12)) "im" !expect_im tr.FSite.data.(1)

let test_spin_color_factorisation () =
  (* (Gamma x 1)(1 x U) psi = (1 x U)(Gamma x 1) psi: spin and color
     multiplications act on independent index spaces. *)
  let g = random_value sm and u = random_value cm and psi = random_value fm in
  value_close ~tol:1e-10 "commuting tensor factors"
    (FSite.mul g (FSite.mul u psi))
    (FSite.mul u (FSite.mul g psi))

let test_outer_color_vs_manual () =
  let a = random_value fm and b = random_value fm in
  let o = FSite.outer_color a b in
  (* check entry (i,j) = sum_s a[s,i] conj(b[s,j]) for i=1, j=2 *)
  let re = ref 0.0 and im = ref 0.0 in
  for s = 0 to 3 do
    let ar = a.FSite.data.(2 * ((s * 3) + 1)) and ai = a.FSite.data.((2 * ((s * 3) + 1)) + 1) in
    let br = b.FSite.data.(2 * ((s * 3) + 2)) and bi = b.FSite.data.((2 * ((s * 3) + 2)) + 1) in
    re := !re +. ((ar *. br) +. (ai *. bi));
    im := !im +. ((ai *. br) -. (ar *. bi))
  done;
  Alcotest.(check (float 1e-12)) "re(1,2)" !re o.FSite.data.(2 * ((1 * 3) + 2));
  Alcotest.(check (float 1e-12)) "im(1,2)" !im o.FSite.data.((2 * ((1 * 3) + 2)) + 1)

let test_norm2_inner_consistency () =
  let a = random_value fm in
  let n = FSite.norm2_local a in
  let p = FSite.inner_local a a in
  Alcotest.(check (float 1e-10)) "norm2 = <a,a>" n.FSite.data.(0) p.FSite.data.(0);
  Alcotest.(check (float 1e-10)) "<a,a> real" 0.0 p.FSite.data.(1)

let test_clover_hermitian () =
  (* The packed clover application must be a Hermitian operator:
     <a, A b> = conj(<b, A a>). *)
  let diag = random_value (Shape.clover_diag Shape.F64) in
  let tri = random_value (Shape.clover_tri Shape.F64) in
  let a = random_value fm and b = random_value fm in
  let ab = FSite.inner_local a (FSite.clover_apply ~diag ~tri b) in
  let ba = FSite.inner_local b (FSite.clover_apply ~diag ~tri a) in
  Alcotest.(check (float 1e-10)) "re" ba.FSite.data.(0) ab.FSite.data.(0);
  Alcotest.(check (float 1e-10)) "im" (-.ba.FSite.data.(1)) ab.FSite.data.(1)

let test_clover_block_structure () =
  (* A fermion living only in the upper chirality stays there. *)
  let diag = random_value (Shape.clover_diag Shape.F64) in
  let tri = random_value (Shape.clover_tri Shape.F64) in
  let psi = FSite.create fm in
  (* populate spins 0,1 only *)
  let data = Array.copy psi.FSite.data in
  for s = 0 to 1 do
    for c = 0 to 2 do
      data.(2 * ((s * 3) + c)) <- Prng.gaussian rng;
      data.((2 * ((s * 3) + c)) + 1) <- Prng.gaussian rng
    done
  done;
  let psi = FSite.of_floats fm data in
  let out = FSite.clover_apply ~diag ~tri psi in
  for s = 2 to 3 do
    for c = 0 to 2 do
      Alcotest.(check (float 0.0)) "lower block untouched re" 0.0 out.FSite.data.(2 * ((s * 3) + c));
      Alcotest.(check (float 0.0)) "lower block untouched im" 0.0
        out.FSite.data.((2 * ((s * 3) + c)) + 1)
    done
  done

let test_type_errors () =
  let psi = random_value fm and u = random_value cm in
  (match FSite.mul psi u with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "fermion * matrix should be rejected (vector on the left)");
  (match FSite.add psi u with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "mismatched add should be rejected");
  match FSite.adj psi with
  | exception Linalg.Algebra.Type_error _ -> ()
  | _ -> Alcotest.fail "adj of a vector should be rejected"

(* ------------------------------- su3 -------------------------------- *)

let test_reunitarize () =
  for _ = 1 to 20 do
    let m = Array.init 18 (fun _ -> Prng.gaussian rng) in
    (* keep it near-invertible *)
    let m = Su3.add m (Su3.scale ~re:3.0 ~im:0.0 (Su3.identity ())) in
    let u = Su3.reunitarize m in
    Alcotest.(check bool) "special unitary" true (Su3.is_special_unitary ~tol:1e-10 u)
  done

let test_expm_known () =
  (* exp(i theta lambda_3) is diagonal with phases e^{+-i theta}. *)
  let theta = 0.3 in
  let l3 = (Su3.gell_mann ()).(2) in
  let u = Su3.expm (Su3.scale ~re:0.0 ~im:theta l3) in
  Alcotest.(check (float 1e-12)) "cos" (cos theta) u.(0);
  Alcotest.(check (float 1e-12)) "sin" (sin theta) u.(1);
  Alcotest.(check (float 1e-12)) "conj" (-.sin theta) u.(2 * 4 + 1);
  Alcotest.(check (float 1e-12)) "corner" 1.0 u.(2 * 8)

let test_expm_inverse () =
  let h = Su3.gaussian_hermitian rng in
  let u = Su3.expm (Su3.scale ~re:0.0 ~im:0.7 h) in
  let uinv = Su3.expm (Su3.scale ~re:0.0 ~im:(-0.7) h) in
  Alcotest.(check (float 1e-10)) "exp(iH) exp(-iH) = 1" 0.0
    (Su3.frobenius_dist (Su3.mul u uinv) (Su3.identity ()))

let test_expm_unitary () =
  let h = Su3.gaussian_hermitian rng in
  let u = Su3.expm (Su3.scale ~re:0.0 ~im:1.3 h) in
  Alcotest.(check bool) "unitary" true (Su3.is_unitary ~tol:1e-10 u)

let test_gell_mann_traces () =
  let gens = Su3.gell_mann () in
  Array.iteri
    (fun a la ->
      let tr_re, tr_im = Su3.trace la in
      Alcotest.(check (float 1e-12)) "traceless re" 0.0 tr_re;
      Alcotest.(check (float 1e-12)) "traceless im" 0.0 tr_im;
      Array.iteri
        (fun b lb ->
          let re, im = Su3.trace (Su3.mul la lb) in
          let expect = if a = b then 2.0 else 0.0 in
          Alcotest.(check (float 1e-12)) "tr(la lb) = 2 dab re" expect re;
          Alcotest.(check (float 1e-12)) "tr(la lb) im" 0.0 im)
        gens)
    gens

let test_gaussian_hermitian_props () =
  for _ = 1 to 10 do
    let h = Su3.gaussian_hermitian rng in
    let tr_re, tr_im = Su3.trace h in
    Alcotest.(check (float 1e-12)) "traceless re" 0.0 tr_re;
    Alcotest.(check (float 1e-12)) "traceless im" 0.0 tr_im;
    Alcotest.(check (float 1e-12)) "hermitian" 0.0 (Su3.frobenius_dist h (Su3.dagger h))
  done

let test_random_su3 () =
  for _ = 1 to 10 do
    let u = Su3.random_su3 rng in
    Alcotest.(check bool) "special unitary" true (Su3.is_special_unitary ~tol:1e-9 u)
  done

let test_determinant () =
  let u = Su3.random_su3 rng in
  let re, im = Su3.determinant u in
  Alcotest.(check (float 1e-9)) "det re" 1.0 re;
  Alcotest.(check (float 1e-9)) "det im" 0.0 im

let () =
  Alcotest.run "linalg"
    [
      ( "site-algebra",
        [
          Alcotest.test_case "add commutes" `Quick test_add_commutes;
          Alcotest.test_case "mul associative" `Quick test_mul_associative;
          Alcotest.test_case "mul distributes" `Quick test_mul_distributes;
          Alcotest.test_case "adj antihomomorphism" `Quick test_adj_antihomomorphism;
          Alcotest.test_case "adj involution" `Quick test_adj_involution;
          Alcotest.test_case "transpose+conj = adj" `Quick test_transpose_conj_is_adj;
          Alcotest.test_case "times_i" `Quick test_times_i;
          Alcotest.test_case "trace cyclic" `Quick test_trace_cyclic;
          Alcotest.test_case "trace spin manual" `Quick test_trace_spin;
          Alcotest.test_case "spin/color factorise" `Quick test_spin_color_factorisation;
          Alcotest.test_case "outer color manual" `Quick test_outer_color_vs_manual;
          Alcotest.test_case "norm2/inner" `Quick test_norm2_inner_consistency;
          Alcotest.test_case "clover hermitian" `Quick test_clover_hermitian;
          Alcotest.test_case "clover block structure" `Quick test_clover_block_structure;
          Alcotest.test_case "type errors" `Quick test_type_errors;
        ] );
      ( "su3",
        [
          Alcotest.test_case "reunitarize" `Quick test_reunitarize;
          Alcotest.test_case "expm diagonal" `Quick test_expm_known;
          Alcotest.test_case "expm inverse" `Quick test_expm_inverse;
          Alcotest.test_case "expm unitary" `Quick test_expm_unitary;
          Alcotest.test_case "gell-mann traces" `Quick test_gell_mann_traces;
          Alcotest.test_case "gaussian hermitian" `Quick test_gaussian_hermitian_props;
          Alcotest.test_case "random su3" `Quick test_random_su3;
          Alcotest.test_case "determinant" `Quick test_determinant;
        ] );
    ]
