#!/usr/bin/env python3
"""CI gates over the JSON artifacts the bench harness writes.

Each subcommand validates one artifact:

  check_bench.py streams    BENCH_streams.json + trace_streams.json
  check_bench.py jitopt     BENCH_jitopt.json
  check_bench.py fusion     BENCH_fusion.json
  check_bench.py fusion-eo  BENCH_fusion_eo.json
  check_bench.py vmperf     BENCH_vmperf.json
  check_bench.py serve      BENCH_serve.json
  check_bench.py precision  BENCH_precision.json

Exit status is uniform across subcommands:

  0  every gate held
  1  a gate failed (the violated invariant is printed)
  2  malformed input (missing/unparseable artifact, missing keys)

`--baseline <dir>` additionally compares the fresh artifact against the
committed one in <dir> (same canonical file name): deterministic
counters (launches, iterations, instruction counts, modeled bytes) must
match exactly, modeled timings (sim_ms and friends) within a relative
tolerance; host wall-clock numbers are never compared.  When
GITHUB_STEP_SUMMARY is set, the comparison is also appended there as a
markdown table of metric deltas.

The gates are deliberately data-driven (no hardcoded kernel counts):
they assert relations the runtime must preserve, not the exact workload
the bench happens to run.  A missing "degraded" key means the run was
not degraded — every subcommand goes through the same helper.
"""

import argparse
import json
import os
import sys

# PR 3 shipped the CG solve at 25.2 launches per iteration (fused groups
# plus a radix-2 fold chain per reduction).  Reduction fusion plus the
# radix-8 fold must land strictly below that.
PR3_LAUNCHES_PER_ITER = 25.2

DEFAULT_FILES = {
    "streams": "BENCH_streams.json",
    "jitopt": "BENCH_jitopt.json",
    "fusion": "BENCH_fusion.json",
    "fusion-eo": "BENCH_fusion_eo.json",
    "vmperf": "BENCH_vmperf.json",
    "serve": "BENCH_serve.json",
    "precision": "BENCH_precision.json",
}


def load(path):
    with open(path) as f:
        return json.load(f)


def is_degraded(data):
    """Uniform degraded semantics: a missing key means not degraded."""
    return bool(data.get("degraded", False))


def check_streams(args):
    data = load(args.file or "BENCH_streams.json")
    assert data["sync_ns"] > 0 and data["overlap_ns"] > 0, "non-positive timings"
    assert data["overlap_ns"] < data["sync_ns"], (
        "overlapped Dslash not faster than synchronous "
        f"({data['overlap_ns']} >= {data['sync_ns']} ns)"
    )
    assert data["trace_bytes"] > 256, "Chrome trace suspiciously small"
    assert data["rank0_streams_with_spans"] >= 2, "expected spans on at least two streams"
    trace = load(data.get("trace_file", "trace_streams.json"))  # must parse as JSON
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert len(events) > 0, "Chrome trace has no events"
    print(
        f"streams OK: {data['sync_ns']:.0f} -> {data['overlap_ns']:.0f} ns "
        f"({100 * data['saved_fraction']:.1f}% saved), "
        f"{len(events)} trace events on >= {data['rank0_streams_with_spans']} streams"
    )


def check_jitopt(args):
    data = load(args.file or "BENCH_jitopt.json")
    kernels = data["kernels"]
    assert kernels, "no kernels in BENCH_jitopt.json"
    improved = 0
    for k in kernels:
        name = k["name"]
        assert k["opt_instructions"] <= k["raw_instructions"], (
            f"{name}: optimized instruction count exceeds raw"
        )
        assert k["opt_registers"] <= k["raw_registers"], (
            f"{name}: optimized register demand exceeds raw"
        )
        assert k["opt_load_bytes"] <= k["raw_load_bytes"], (
            f"{name}: optimized load bytes exceed raw"
        )
        if k["opt_instructions"] < k["raw_instructions"]:
            improved += 1
        print(
            f"{name}: {k['raw_instructions']} -> {k['opt_instructions']} instrs, "
            f"{k['raw_registers']} -> {k['opt_registers']} regs"
        )
    assert improved > 0, "middle-end improved no kernel at all"
    print(f"jitopt OK: {improved}/{len(kernels)} kernels improved")


def check_fusion(args):
    data = load(args.file or "BENCH_fusion.json")
    cg = data["cg"]
    assert cg["bit_identical"], "fused CG solution diverged from unfused"
    lu = cg["unfused"]["launches"]
    lf = cg["fused"]["launches"]
    lr = cg["fused_reduction"]["launches"]
    assert lr < lf < lu, f"launch counts not strictly decreasing: {lu} / {lf} / {lr}"
    assert cg["fused"]["kernel_bytes"] < cg["unfused"]["kernel_bytes"], (
        "fusion did not reduce kernel global traffic"
    )
    assert cg["fused_reduction"]["kernel_bytes"] <= cg["fused"]["kernel_bytes"], (
        "reduction fusion increased kernel global traffic"
    )
    per_iter = lr / cg["iterations"]
    assert per_iter < PR3_LAUNCHES_PER_ITER, (
        f"{per_iter:.1f} launches/iter not below the PR 3 baseline "
        f"({PR3_LAUNCHES_PER_ITER})"
    )
    # Simulated device time is deterministic, so the fusion win is
    # asserted strictly on it; host wall (steady-state, caches warm)
    # only gets a noise-tolerant sanity bound.
    mu = cg["unfused"]["sim_ms"]
    mf = cg["fused"]["sim_ms"]
    mr = cg["fused_reduction"]["sim_ms"]
    assert mr <= mf < mu, f"simulated time not improved by fusion: {mu} / {mf} / {mr} ms"
    assert cg["fused"]["wall_s"] <= cg["unfused"]["wall_s"] * 1.25, (
        f"fused steady-state wall {cg['fused']['wall_s']}s far exceeds "
        f"unfused {cg['unfused']['wall_s']}s"
    )
    planner = data["planner"]
    assert planner["fused_groups"] > 0, "planner fused no groups"
    assert planner["fallbacks"] == 0, f"{planner['fallbacks']} fusion fallbacks"
    # Persistent JIT cache: a warm-cache engine must replay every kernel
    # (zero compiles, hits on disk) and its first solve must cost no more
    # than a steady-state one — both sides are min-of-N resamples, so the
    # 1.1x headroom covers only residual timer noise, not compile work.
    jc = data["jit_cache"]
    assert jc is not None, "jit_cache section missing (REPRO_JIT_CACHE=off during bench?)"
    warm = jc["cache_warm"]
    assert warm["kernels_built"] == 0, (
        f"warm-cache engine compiled {warm['kernels_built']} kernels (want 0)"
    )
    assert warm["hits"] > 0, "warm-cache engine hit nothing in the cache"
    assert jc["cache_cold"]["stores"] > 0 or warm["hits"] > 0, "cache never populated"
    assert warm["cold_s"] <= 1.1 * warm["warm_s"], (
        f"warm-cache first solve {warm['cold_s']}s exceeds 1.1x steady "
        f"{warm['warm_s']}s — warm startup is doing compile-shaped work"
    )
    print(
        f"fusion OK: CG {cg['iterations']} iters, launches {lu} -> {lf} -> {lr} "
        f"({per_iter:.1f}/iter, baseline {PR3_LAUNCHES_PER_ITER}), "
        f"sim {mu:.2f} -> {mf:.2f} -> {mr:.2f} ms, "
        f"{planner['fused_groups']} groups, {planner['launches_saved']} launches saved, "
        f"warm cache: {warm['hits']} hits, 0 compiles, "
        f"cold {warm['cold_s']:.2f}s vs steady {warm['warm_s']:.2f}s"
    )


def check_vmperf(args):
    data = load(args.file or "BENCH_vmperf.json")
    for k in data["kernels"]:
        assert k["bit_identical"], f"kernel {k['name']} diverged across worker counts"
        assert k["scalar_bit_identical"], (
            f"kernel {k['name']}: superinstruction checksum diverged from the "
            "scalar interpreter"
        )
    cg = data["cg"]
    assert cg["bit_identical"], "CG solution diverged across worker counts"
    assert cg["scalar_bit_identical"], (
        "CG: superinstruction solution diverged from the scalar interpreter"
    )
    ws = data["workers"]
    walls = cg["wall_s"]
    w1 = walls[ws.index(1)]
    best_w = ws[walls.index(min(walls))]
    speedup = w1 / min(walls)
    degraded = is_degraded(data)
    line = (
        f"cg {cg['iterations']} iters: {w1:.2f}s at 1 worker, best "
        f"{min(walls):.2f}s at {best_w} ({speedup:.2f}x), runtime "
        f"{data['runtime']}, {data['available_domains']} domains"
        + (" [DEGRADED]" if degraded else "")
    )
    # The superinstruction dispatch gate: the A/B is single-worker and
    # interleaved on one engine (host noise hits both strategies), so
    # it holds even on degraded multicore sweeps.
    if args.min_dslash_speedup is not None:
        kd = {k["name"]: k for k in data["kernels"]}
        assert "dslash" in kd, "no dslash kernel in the vmperf sweep"
        d = kd["dslash"]
        assert d["superinsns"] >= 1, "dslash decoded to no superinstruction spans"
        assert d["dispatch_ratio"] < 1.0, (
            f"dslash dispatch ratio {d['dispatch_ratio']} not below 1 "
            "(superinstructions fused nothing)"
        )
        sp = d["scalar_ms"] / d["soa_ms"]
        assert sp >= args.min_dslash_speedup, (
            f"dslash superinstruction speedup is {sp:.2f}x "
            f"({d['scalar_ms']:.2f} -> {d['soa_ms']:.2f} ms), below the "
            f"{args.min_dslash_speedup:.2f}x gate"
        )
        line += f", dslash superinsn {sp:.2f}x"
    # The fusion-coverage gate: dispatch_ratio is a pure decode-time
    # metric ((units + uncovered instrs) / decoded instrs), so like the
    # A/B above it is asserted on every run, degraded or not.
    if args.max_dispatch_ratio is not None:
        worst = max(data["kernels"], key=lambda k: k["dispatch_ratio"])
        assert worst["dispatch_ratio"] <= args.max_dispatch_ratio, (
            f"kernel {worst['name']} dispatch ratio {worst['dispatch_ratio']:.4f} "
            f"exceeds the {args.max_dispatch_ratio:.2f} gate (planner fusing "
            "too little per unit)"
        )
        line += (
            f", worst dispatch ratio {worst['dispatch_ratio']:.3f} ({worst['name']})"
        )
    # Timing gates only make sense when the multicore back-end was built
    # (OCaml >= 5) and the host actually has spare cores; the sequential
    # fallback, single-core runners and degraded sweeps (more workers
    # requested than domains available) stay informational — the bench
    # stamps "degraded" into the artifact for exactly this decision.
    if data["runtime"] == "multicore" and data["available_domains"] >= 2 and not degraded:
        assert min(walls) <= w1, f"no multi-worker config beat 1 worker: {line}"
        # The batched-sweep scaling gate: asserted only where it can
        # physically hold — at least 4 real domains and a 4-worker column.
        if args.min_cg_speedup is not None:
            assert data["available_domains"] >= 4, (
                f"--min-cg-speedup requires a >= 4-domain runner "
                f"(got {data['available_domains']}): {line}"
            )
            assert 4 in ws, f"no 4-worker column in the sweep: {line}"
            s4 = w1 / walls[ws.index(4)]
            assert s4 >= args.min_cg_speedup, (
                f"CG speedup at 4 workers is {s4:.2f}x, below the "
                f"{args.min_cg_speedup:.2f}x gate: {line}"
            )
            # No kernel may scale backwards at 4 workers (5% timer noise).
            for k in data["kernels"]:
                k1 = k["wall_ms"][ws.index(1)]
                k4 = k["wall_ms"][ws.index(4)]
                assert k4 <= 1.05 * k1, (
                    f"kernel {k['name']} slower at 4 workers "
                    f"({k4:.2f} ms) than at 1 ({k1:.2f} ms)"
                )
        print(f"vmperf OK: {line}")
    else:
        assert args.min_cg_speedup is None, (
            f"--min-cg-speedup asserted on an ineligible run: {line}"
        )
        print(f"vmperf OK (bit-identical; scaling informational): {line}")


def check_fusion_eo(args):
    data = load(args.file or "BENCH_fusion_eo.json")
    eo = data["eo"]
    assert eo["bit_identical"], "eo fused solution diverged from unfused"
    lu = eo["unfused"]["launches"]
    lr = eo["fused_reduction"]["launches"]
    assert lr < lu, f"eo solve: fusion saved no launches ({lr} >= {lu})"
    planner = data["planner"]
    assert planner["fused_groups"] > 0, "eo solve fused no groups (cross-subset grouping broken)"
    avg = planner["avg_members_per_fused_group"]
    assert avg > 1.0, f"eo fused groups average {avg} members (need > 1)"
    assert planner["fallbacks"] == 0, f"{planner['fallbacks']} fusion fallbacks"
    print(
        f"fusion-eo OK: {eo['iterations']} iters, launches {lu} -> {lr}, "
        f"{planner['fused_groups']} groups at {avg:.2f} members/group"
    )


def check_serve(args):
    data = load(args.file or "BENCH_serve.json")
    n = data["sessions"]
    assert n >= 2, f"serving bench ran only {n} sessions"
    assert data["bit_identical"], "served solutions diverged from dedicated engines"
    assert data["tasks"] == sum(s["tasks"] for s in data["sessions_detail"]), (
        "executed task count does not match per-session totals"
    )
    serve = data["serve"]
    serial = data["serial"]
    # Aggregate modeled device time: sharing one engine (kernel pool +
    # autotune state) must cost at most 20% over dedicated engines; in
    # practice it is cheaper because tuning probes run once, not N times.
    ratio = serve["sim_ms_total"] / serial["sim_ms_total"]
    assert ratio <= 1.2, (
        f"served aggregate sim time {serve['sim_ms_total']:.1f} ms is {ratio:.2f}x "
        f"serial {serial['sim_ms_total']:.1f} ms (limit 1.2x)"
    )
    # The serial baseline populated the shared cache dir, so the serving
    # engine must start fully warm: zero compiles, hits on disk.
    jc = data["jit_cache"]
    assert jc is not None, "jit_cache section missing (REPRO_JIT_CACHE=off during bench?)"
    assert serve["kernels_built"] == 0, (
        f"serving engine compiled {serve['kernels_built']} kernels against a warm cache"
    )
    assert jc["hits"] > 0, "serving engine hit nothing in the shared cache"
    assert jc["corrupt"] == 0, f"{jc['corrupt']} corrupt cache entries"
    assert data["resident_after_close"] == 0, (
        f"{data['resident_after_close']} fields still device-resident after teardown"
    )
    for s in data["sessions_detail"]:
        assert s["launches"] > 0, f"session {s['name']} launched nothing"
        assert s["sim_ms"] > 0, f"session {s['name']} has no attributed device time"
        assert s["queue_wait_s"] >= 0, f"session {s['name']} has negative queue wait"
    if args.reused:
        # Second bench invocation against a persistent REPRO_JIT_CACHE dir:
        # every kernel, including the serial tenants' first engine, must
        # come from the previous run's cache.
        assert jc["misses"] == 0, (
            f"{jc['misses']} cache misses on a reused cache dir (expected full reuse)"
        )
        assert serial["kernels_built_first"] == 0, (
            f"first serial tenant compiled {serial['kernels_built_first']} kernels "
            "on a reused cache dir"
        )
    print(
        f"serve OK: {n} sessions, {data['tasks']} tasks, bit-identical, "
        f"sim ratio {ratio:.3f} (limit 1.2), {jc['hits']} cache hits / "
        f"{jc['misses']} misses, 0 compiles on the serving engine, "
        f"0 resident after teardown" + (" [reused dir]" if args.reused else "")
    )


def check_precision(args):
    data = load(args.file or "BENCH_precision.json")
    assert data["bit_identical"], "a scheme diverged across VM worker counts / CPU"
    tol = data["tol"]
    schemes = {s["name"]: s for s in data["schemes"]}
    for name in ("cg_f64", "dc_f32", "ru_f16"):
        s = schemes[name]
        assert s["converged"], f"{name} did not converge"
        assert s["residual"] <= tol, f"{name} residual {s['residual']} above tol {tol}"
        assert s["kernel_bytes"] > 0 and s["sim_ms"] > 0, f"{name} has no measured traffic"
    f64, f32, f16 = schemes["cg_f64"], schemes["dc_f32"], schemes["ru_f16"]
    # Storage tiers must land where they should: the f64 baseline moves no
    # narrow traffic, each mixed scheme is dominated by its low tier with a
    # nonzero f64 remainder (outer residuals / reliable updates).
    assert f64["bytes_f16"] == 0 and f64["bytes_f32"] == 0, "f64 CG moved sub-f64 traffic"
    assert f32["bytes_f32"] > f32["bytes_f64"] > 0, "defect-correction not f32-dominated"
    assert f16["bytes_f16"] > f16["bytes_f64"] > 0, "reliable-update not f16-dominated"
    ratio = data["bytes_ratio_f64_over_f16"]
    assert ratio >= 1.8, (
        f"f16 reliable-update saved only {ratio:.2f}x model traffic (need >= 1.8x)"
    )
    recomputed = f64["kernel_bytes"] / f16["kernel_bytes"]
    assert abs(ratio - recomputed) <= 1e-3 * recomputed, (
        f"reported ratio {ratio} inconsistent with per-scheme bytes ({recomputed:.4f})"
    )
    m = data["model_trajectory_s"]
    assert m["f16"] < m["f32"] < m["f64"], (
        "production model does not improve monotonically with narrower solver storage"
    )
    print(
        f"precision OK: tol {tol:g} reached by all 3 schemes "
        f"(f64 {f64['iterations']}, f32 {f32['iterations']}, f16 {f16['iterations']} iters, "
        f"{f16['aux_iterations']} reliable updates), bit-identical, "
        f"f16 traffic {ratio:.2f}x below f64 (gate 1.8x), "
        f"modeled trajectory {m['f64']:.0f} -> {m['f16']:.0f} s"
    )


# ---------------------------------------------------------------------------
# Baseline regression comparison.
#
# Deterministic counters must match the committed artifact exactly;
# modeled timings within a relative tolerance (they depend on the block
# autotuner, which measures the host); host wall-clock metrics and
# environment descriptors are never compared.

EXACT_KEYS = {
    "launches",
    "iterations",
    "aux_iterations",
    "max_iter",
    "raw_instructions",
    "opt_instructions",
    "raw_registers",
    "opt_registers",
    "raw_load_bytes",
    "opt_load_bytes",
    "kernel_bytes",
    "bytes_f16",
    "bytes_f32",
    "bytes_f64",
    "superinsns",
    "fused_units",
    "covered_instrs",
    "decoded_instrs",
    "fused_groups",
    "launches_saved",
    "fallbacks",
    "sessions",
    "tasks",
}

TOLERANT_KEYS = {
    "sim_ms",
    "sim_ms_total",
    "sync_ns",
    "overlap_ns",
    "saved_fraction",
    "dispatch_ratio",
    "bytes_ratio_f64_over_f16",
    "avg_members_per_fused_group",
}

BASELINE_TOLERANCE = 0.25


def compare_baseline(check, fresh, base):
    """Returns (rows, failures): rows for the step-summary table, and
    human-readable failure strings (empty when the baseline holds)."""
    rows = []
    failures = []

    def scalar(path, key, bv, fv):
        if not isinstance(bv, (int, float)) or isinstance(bv, bool):
            return
        if not isinstance(fv, (int, float)) or isinstance(fv, bool):
            failures.append(f"{path}: baseline {bv!r} but fresh value {fv!r}")
            return
        delta = fv - bv
        rel = delta / bv if bv else (0.0 if fv == 0 else float("inf"))
        if key in EXACT_KEYS:
            ok = bv == fv
            kind = "exact"
        else:
            ok = abs(delta) <= BASELINE_TOLERANCE * max(abs(bv), 1e-12)
            kind = f"±{100 * BASELINE_TOLERANCE:.0f}%"
        rows.append((path, bv, fv, rel, kind, ok))
        if not ok:
            failures.append(
                f"{path}: baseline {bv} vs fresh {fv} ({100 * rel:+.1f}%, {kind})"
            )

    def walk(path, b, f):
        if isinstance(b, dict):
            if not isinstance(f, dict):
                failures.append(f"{path or '<root>'}: not an object in fresh artifact")
                return
            for key, bv in b.items():
                p = f"{path}.{key}" if path else key
                if key in EXACT_KEYS or key in TOLERANT_KEYS:
                    if key not in f:
                        failures.append(f"{p}: missing from fresh artifact")
                    else:
                        scalar(p, key, bv, f[key])
                elif isinstance(bv, (dict, list)):
                    if key in f:
                        walk(p, bv, f[key])
        elif isinstance(b, list):
            named = [x for x in b if isinstance(x, dict) and "name" in x]
            if named and isinstance(f, list):
                fmap = {x.get("name"): x for x in f if isinstance(x, dict)}
                for x in named:
                    p = f"{path}[{x['name']}]"
                    if x["name"] in fmap:
                        walk(p, x, fmap[x["name"]])
                    else:
                        failures.append(f"{p}: missing from fresh artifact")

    walk("", base, fresh)
    if not rows and not failures:
        failures.append(f"{check}: baseline comparison matched no metrics at all")
    return rows, failures


def write_step_summary(check, rows, failures):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        verdict = "✅ within tolerance" if not failures else "❌ regression"
        f.write(f"### `{check}` vs committed baseline — {verdict}\n\n")
        f.write("| metric | baseline | fresh | delta | gate | ok |\n")
        f.write("|---|---:|---:|---:|---|---|\n")
        for path_, bv, fv, rel, kind, ok in rows:
            f.write(
                f"| `{path_}` | {bv:g} | {fv:g} | {100 * rel:+.1f}% | {kind} | "
                f"{'✅' if ok else '❌'} |\n"
            )
        for msg in failures:
            f.write(f"- ❌ {msg}\n")
        f.write("\n")


def run_baseline(args):
    fresh_path = args.file or DEFAULT_FILES[args.check]
    base_path = os.path.join(args.baseline, DEFAULT_FILES[args.check])
    fresh = load(fresh_path)
    base = load(base_path)
    rows, failures = compare_baseline(args.check, fresh, base)
    write_step_summary(args.check, rows, failures)
    assert not failures, (
        f"baseline regression vs {base_path}:\n  " + "\n  ".join(failures)
    )
    print(
        f"baseline OK: {len(rows)} metrics within tolerance of {base_path} "
        f"(counters exact, modeled timings ±{100 * BASELINE_TOLERANCE:.0f}%)"
    )


CHECKS = {
    "streams": check_streams,
    "jitopt": check_jitopt,
    "fusion": check_fusion,
    "fusion-eo": check_fusion_eo,
    "vmperf": check_vmperf,
    "serve": check_serve,
    "precision": check_precision,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("check", choices=sorted(CHECKS))
    parser.add_argument("file", nargs="?", help="artifact path (defaults per check)")
    parser.add_argument(
        "--baseline",
        metavar="DIR",
        default=None,
        help="compare the fresh artifact against the committed one in DIR "
        "(deterministic counters exact, modeled timings within tolerance)",
    )
    parser.add_argument(
        "--min-cg-speedup",
        type=float,
        default=None,
        help="vmperf: require at least this CG speedup at 4 workers; only valid "
        "on non-degraded multicore runs with >= 4 available domains",
    )
    parser.add_argument(
        "--min-dslash-speedup",
        type=float,
        default=None,
        help="vmperf: require at least this single-worker dslash speedup with "
        "superinstructions on vs off (the interleaved A/B timings)",
    )
    parser.add_argument(
        "--max-dispatch-ratio",
        type=float,
        default=None,
        help="vmperf: require every kernel's superinstruction dispatch ratio "
        "((units + uncovered instrs) / decoded instrs) at or below this bound; "
        "decode-time metric, valid on degraded runs",
    )
    parser.add_argument(
        "--reused",
        action="store_true",
        help="serve: the bench ran against an already-populated REPRO_JIT_CACHE dir; "
        "additionally require zero misses and zero compiles anywhere",
    )
    args = parser.parse_args()
    try:
        CHECKS[args.check](args)
        if args.baseline is not None:
            run_baseline(args)
    except AssertionError as e:
        print(f"GATE FAILED ({args.check}): {e}", file=sys.stderr)
        sys.exit(1)
    except (FileNotFoundError, KeyError, IndexError, TypeError, ValueError) as e:
        # json.JSONDecodeError is a ValueError; .index() misses are
        # ValueErrors; missing keys are KeyErrors — all of these mean the
        # artifact (or the committed baseline) is malformed, not that a
        # gate failed.
        print(f"MALFORMED INPUT ({args.check}): {type(e).__name__}: {e}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
