#!/usr/bin/env python3
"""Selftest for check_bench.py against canned fixtures.

Runs the gate script as a subprocess (exactly as CI does) and asserts
the normalized exit-code contract on good, gate-failing and malformed
artifacts: 0 pass / 1 gate fail / 2 malformed input.
"""

import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
CHECK = os.path.join(HERE, "check_bench.py")
FIX = os.path.join(HERE, "fixtures")


def run(argv, env_extra=None):
    env = dict(os.environ)
    env.pop("GITHUB_STEP_SUMMARY", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, CHECK] + argv,
        capture_output=True,
        text=True,
        env=env,
    )


def expect(expected, argv, why, env_extra=None):
    r = run(argv, env_extra)
    assert r.returncode == expected, (
        f"{why}: check_bench {' '.join(argv)} exited {r.returncode}, "
        f"expected {expected}\nstdout: {r.stdout}\nstderr: {r.stderr}"
    )
    return r


def fx(name):
    return os.path.join(FIX, name)


def main():
    # 0: a healthy artifact passes, with and without the perf gates.
    expect(0, ["vmperf", fx("vmperf_good.json")], "good artifact")
    expect(
        0,
        ["vmperf", fx("vmperf_good.json"),
         "--min-cg-speedup", "1.5", "--min-dslash-speedup", "2.0"],
        "good artifact with both perf gates",
    )

    # Normalized degraded semantics: a missing "degraded" key means not
    # degraded, so the scaling gates apply (and hold) exactly as they do
    # when the key is present and false.
    expect(
        0,
        ["vmperf", fx("vmperf_no_degraded_key.json"), "--min-cg-speedup", "1.5"],
        "missing degraded key treated as not degraded",
    )

    # 1: gate failures.  A degraded sweep stays informational, but
    # asserting a scaling gate on it is itself a gate failure...
    expect(0, ["vmperf", fx("vmperf_degraded.json")], "degraded artifact, no gates")
    r = expect(
        1,
        ["vmperf", fx("vmperf_degraded.json"), "--min-cg-speedup", "1.5"],
        "scaling gate on a degraded run",
    )
    assert "GATE FAILED" in r.stderr, f"no GATE FAILED banner: {r.stderr}"
    # ...and the dslash superinstruction gate still applies on degraded
    # runs (the A/B is single-worker and interleaved).
    expect(
        1,
        ["vmperf", fx("vmperf_slow_dslash.json"), "--min-dslash-speedup", "2.0"],
        "dslash superinstruction speedup below the gate",
    )

    # The dispatch-ratio gate is decode-time, so it holds (and fails)
    # independently of degraded status, and it covers every kernel —
    # the high-dispatch fixture drifts only the non-dslash kernel.
    expect(
        0,
        ["vmperf", fx("vmperf_good.json"), "--max-dispatch-ratio", "0.35"],
        "dispatch ratios under the gate",
    )
    expect(
        0,
        ["vmperf", fx("vmperf_degraded.json"), "--max-dispatch-ratio", "0.35"],
        "dispatch-ratio gate applies on a degraded run",
    )
    r = expect(
        1,
        ["vmperf", fx("vmperf_high_dispatch.json"), "--max-dispatch-ratio", "0.35"],
        "worst-kernel dispatch ratio above the gate",
    )
    assert "lcm" in r.stderr, f"violation not attributed to the worst kernel: {r.stderr}"

    # 2: malformed input is never reported as a gate failure.
    r = expect(2, ["vmperf", fx("vmperf_truncated.json")], "truncated JSON")
    assert "MALFORMED INPUT" in r.stderr, f"no MALFORMED INPUT banner: {r.stderr}"
    expect(2, ["vmperf", fx("no_such_artifact.json")], "missing artifact file")

    # Baseline comparison: matching baseline passes, drifted deterministic
    # counters fail with exit 1, a missing baseline dir is malformed input.
    with tempfile.TemporaryDirectory() as td:
        summary = os.path.join(td, "summary.md")
        expect(
            0,
            ["vmperf", fx("vmperf_good.json"), "--baseline", fx("baseline_ok")],
            "artifact matching its committed baseline",
            env_extra={"GITHUB_STEP_SUMMARY": summary},
        )
        with open(summary) as f:
            text = f.read()
        assert "| metric | baseline | fresh |" in text, (
            f"step summary has no metric table:\n{text}"
        )
        r = expect(
            1,
            ["vmperf", fx("vmperf_good.json"), "--baseline", fx("baseline_drift")],
            "drifted superinstruction counters vs baseline",
            env_extra={"GITHUB_STEP_SUMMARY": summary},
        )
        assert "superinsns" in r.stderr, f"drift not attributed to superinsns: {r.stderr}"
    expect(
        2,
        ["vmperf", fx("vmperf_good.json"), "--baseline", fx("no_such_dir")],
        "missing baseline dir",
    )

    print("check_bench selftest OK: 14 cases (exit codes 0/1/2, degraded "
          "normalization, dslash + dispatch-ratio gates, baseline compare "
          "+ step summary)")


if __name__ == "__main__":
    main()
