(* Benchmark harness: regenerates every table and figure of the paper.

   Each [fig*] / [table*] function prints the series the paper plots, and
   the [micro] section runs Bechamel wall-clock benchmarks of the real
   pipeline stages (code generation, driver JIT, VM execution, CPU
   reference).  Run everything with [dune exec bench/main.exe], or a single
   section with e.g. [dune exec bench/main.exe -- fig4]. *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let section name = Printf.printf "\n===== %s =====\n%!" name

(* ------------------------------------------------------------------ *)
(* Table I: the QDP++ type system *)

let table1 () =
  section "Table I: QDP++ data types (incl. clover types)";
  let show name shape alias =
    Printf.printf "  %-8s %-14s dof/site=%3d bytes/site(DP)=%4d  %s\n" name
      (Shape.to_string shape) (Shape.dof shape) (Shape.bytes_per_site shape) alias
  in
  show "psi" (Shape.lattice_fermion Shape.F64) "LatticeFermion";
  show "U" (Shape.lattice_color_matrix Shape.F64) "LatticeColorMatrix";
  show "Gamma" (Shape.lattice_spin_matrix Shape.F64) "LatticeSpinMatrix";
  show "Adiag" (Shape.clover_diag Shape.F64) "(clover diagonal)";
  show "Atria" (Shape.clover_tri Shape.F64) "(clover triangular)"

(* ------------------------------------------------------------------ *)
(* Table II: test functions and their flop/byte *)

let test_functions geom prec =
  let cm = Shape.lattice_color_matrix prec in
  let fm = Shape.lattice_fermion prec in
  let sm = Shape.lattice_spin_matrix prec in
  let u1 = Field.create cm geom
  and u2 = Field.create cm geom
  and u3 = Field.create cm geom in
  let p0 = Field.create fm geom and p1 = Field.create fm geom and p2 = Field.create fm geom in
  let g1 = Field.create sm geom and g2 = Field.create sm geom and g3 = Field.create sm geom in
  let ad = Field.create (Shape.clover_diag prec) geom in
  let at = Field.create (Shape.clover_tri prec) geom in
  let f = Expr.field in
  [
    ("lcm", Expr.mul (f u2) (f u3), u1);
    ("upsi", Expr.mul (f u1) (f p2), p1);
    ("spmat", Expr.mul (f g2) (f g3), g1);
    ("matvec", Expr.add (Expr.mul (f u1) (f p1)) (Expr.mul (f u1) (f p2)), p0);
    ("clover", Expr.clover ~diag:(f ad) ~tri:(f at) (f p1), p0);
  ]

let table2 () =
  section "Table II: test functions, flop/byte (DP), from generated kernels";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let paper = [ ("lcm", 0.458); ("upsi", 0.5); ("spmat", 0.62); ("matvec", 0.64); ("clover", 0.525) ] in
  Printf.printf "  %-8s %8s %8s %10s %10s\n" "test" "flops" "bytes" "flop/byte" "paper";
  List.iter
    (fun (name, expr, dest) ->
      let b =
        Qdpjit.Codegen.build ~kname:("t2_" ^ name) ~dest_shape:dest.Field.shape ~expr
          ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
      in
      let a = Ptx.Analysis.kernel b.Qdpjit.Codegen.kernel in
      Printf.printf "  %-8s %8d %8d %10.3f %10.3f\n" name a.Ptx.Analysis.flops
        (a.Ptx.Analysis.load_bytes + a.Ptx.Analysis.store_bytes)
        (Ptx.Analysis.flop_per_byte a) (List.assoc name paper))
    (test_functions geom Shape.F64)

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: sustained bandwidth vs volume (model-mode sweeps) *)

let bandwidth_sweep prec =
  let name =
    match prec with Shape.F16 -> "half" | Shape.F32 -> "single" | Shape.F64 -> "double"
  in
  section
    (Printf.sprintf "Fig %s: K20x (ECC off) sustained GB/s vs V=L^4, %s precision"
       (match prec with Shape.F32 -> "4" | _ -> "5")
       name);
  let ls = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20; 22; 24; 26; 28 ] in
  Printf.printf "  %-4s" "L";
  List.iter
    (fun (n, _, _) -> Printf.printf " %8s" n)
    (test_functions (Geometry.create [| 2; 2; 2; 2 |]) prec);
  Printf.printf "\n";
  List.iter
    (fun l ->
      let geom = Geometry.create [| l; l; l; l |] in
      let eng = Qdpjit.Engine.create ~mode:Gpusim.Device.Model_only ~fuse:false () in
      Printf.printf "  %-4d" l;
      List.iter
        (fun (name, expr, dest) ->
          for _ = 1 to 12 do
            Qdpjit.Engine.eval eng dest expr
          done;
          let dev = Qdpjit.Engine.device eng in
          let before = Gpusim.Device.clock_ns dev in
          Qdpjit.Engine.eval eng dest expr;
          let ns = Gpusim.Device.clock_ns dev -. before in
          (* Bytes the kernel actually moves (matvec re-reads U, which the
             paper's sustained-bandwidth metric counts). *)
          let built =
            Qdpjit.Codegen.build ~kname:("bw_" ^ name) ~dest_shape:dest.Field.shape ~expr
              ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
          in
          let a = Ptx.Analysis.kernel built.Qdpjit.Codegen.kernel in
          let bytes =
            Geometry.volume geom * (a.Ptx.Analysis.load_bytes + a.Ptx.Analysis.store_bytes)
          in
          Printf.printf " %8.1f" (float_of_int bytes /. ns))
        (test_functions geom prec);
      Printf.printf "\n%!")
    ls;
  Printf.printf "  (paper: rise to a shoulder near L=16 (SP) / L=12 (DP), plateau ~197 GB/s = 79%% of peak)\n"

(* ------------------------------------------------------------------ *)
(* Figure 6: Dslash with/without communication overlap, 2 GPUs *)

let fig6 () =
  section "Fig 6: Wilson Dslash GFLOPS vs V, 2x K20m (ECC on), IB, overlap on/off";
  Printf.printf "  %-4s %12s %12s %12s %12s\n" "L" "SP-overlap" "SP-nonovl" "DP-overlap" "DP-nonovl";
  List.iter
    (fun l ->
      let global_dims = [| l; l; l; l |] in
      let gflops prec overlap =
        let m =
          Qdpjit.Multi.create ~machine:Gpusim.Machine.k20m_ecc_on ~mode:Gpusim.Device.Model_only
            ~network:Comms.Network.infiniband_qdr ~global_dims ~rank_dims:[| 1; 1; 1; 2 |] ()
        in
        Qdpjit.Multi.set_overlap m overlap;
        let u =
          Array.init 4 (fun _ -> Qdpjit.Multi.create_field m (Shape.lattice_color_matrix prec))
        in
        let psi = Qdpjit.Multi.create_field m (Shape.lattice_fermion prec) in
        let out = Qdpjit.Multi.create_field m (Shape.lattice_fermion prec) in
        let mk rank =
          let ul = Array.map (fun (df : Qdpjit.Multi.dfield) -> df.Qdpjit.Multi.locals.(rank)) u in
          Lqcd.Wilson.hopping_expr ul psi.Qdpjit.Multi.locals.(rank)
        in
        (* Warm the tuner, then time one application. *)
        for _ = 1 to 8 do
          ignore (Qdpjit.Multi.eval m out mk)
        done;
        Qdpjit.Multi.reset_clocks m;
        let t = Qdpjit.Multi.eval m out mk in
        let v = Array.fold_left ( * ) 1 global_dims in
        let gf = float_of_int (Lqcd.Wilson.dslash_flops_per_site * v) /. t.Qdpjit.Multi.total_ns in
        (* Release this configuration's Bigarray-backed fields before the
           next one: the GC's heuristics underestimate Bigarray memory. *)
        Gc.compact ();
        gf
      in
      Printf.printf "  %-4d %12.1f %12.1f %12.1f %12.1f\n%!" l (gflops Shape.F32 true)
        (gflops Shape.F32 false) (gflops Shape.F64 true) (gflops Shape.F64 false))
    [ 8; 12; 16; 20; 24; 28; 32; 36; 40 ];
  Printf.printf "  (paper: overlap gains ~11%% SP / ~7%% DP at the largest volume)\n"

(* ------------------------------------------------------------------ *)
(* Streams: the Fig. 6 workload through the stream/event engine, with the
   rank timelines exported as a Chrome trace *)

let streams_bench () =
  section "Streams: sync vs overlapped Dslash timeline, Chrome trace export";
  let l = 32 in
  let global_dims = [| l; l; l; l |] in
  let run overlap =
    let m =
      Qdpjit.Multi.create ~machine:Gpusim.Machine.k20m_ecc_on ~mode:Gpusim.Device.Model_only
        ~network:Comms.Network.infiniband_qdr ~global_dims ~rank_dims:[| 1; 1; 1; 2 |] ()
    in
    Qdpjit.Multi.set_overlap m overlap;
    let u =
      Array.init 4 (fun _ -> Qdpjit.Multi.create_field m (Shape.lattice_color_matrix Shape.F32))
    in
    let psi = Qdpjit.Multi.create_field m (Shape.lattice_fermion Shape.F32) in
    let out = Qdpjit.Multi.create_field m (Shape.lattice_fermion Shape.F32) in
    let mk rank =
      let ul = Array.map (fun (df : Qdpjit.Multi.dfield) -> df.Qdpjit.Multi.locals.(rank)) u in
      Lqcd.Wilson.hopping_expr ul psi.Qdpjit.Multi.locals.(rank)
    in
    for _ = 1 to 8 do
      ignore (Qdpjit.Multi.eval m out mk)
    done;
    Qdpjit.Multi.reset_clocks m;
    let t = Qdpjit.Multi.eval m out mk in
    (m, t.Qdpjit.Multi.total_ns)
  in
  let m_on, t_on = run true in
  let _, t_off = run false in
  Printf.printf "  SP Dslash %d^4, 2 ranks: overlapped %.0f ns, synchronous %.0f ns (%.1f%% saved)\n"
    l t_on t_off
    (100.0 *. (t_off -. t_on) /. t_off);
  (* Export the overlapped run's timelines (one process per rank, one
     thread per stream). *)
  let trace_path = "trace_streams.json" in
  let ctxs =
    List.init (Qdpjit.Multi.nranks m_on) (fun r ->
        (Printf.sprintf "rank%d" r, Qdpjit.Engine.streams (Qdpjit.Multi.engine m_on r)))
  in
  Streams.Trace.write_file trace_path ctxs;
  let trace_bytes = (Unix.stat trace_path).Unix.st_size in
  let streams_used =
    let ctx = Qdpjit.Engine.streams (Qdpjit.Multi.engine m_on 0) in
    List.length
      (List.sort_uniq compare (List.map (fun sp -> sp.Streams.span_sid) (Streams.spans ctx)))
  in
  Printf.printf "  wrote %s: %d bytes, rank0 spans on %d streams\n" trace_path trace_bytes
    streams_used;
  if trace_bytes < 256 then failwith "trace file suspiciously small";
  if streams_used < 2 then failwith "expected spans on at least two streams";
  let oc = open_out "BENCH_streams.json" in
  Printf.fprintf oc
    "{\n  \"workload\": \"wilson_dslash_sp_%d^4_2ranks\",\n  \"sync_ns\": %.1f,\n  \"overlap_ns\": %.1f,\n  \"saved_fraction\": %.4f,\n  \"trace_file\": \"%s\",\n  \"trace_bytes\": %d,\n  \"rank0_streams_with_spans\": %d\n}\n"
    l t_off t_on
    ((t_off -. t_on) /. t_off)
    trace_path trace_bytes streams_used;
  close_out oc;
  Printf.printf "  wrote BENCH_streams.json\n"

(* ------------------------------------------------------------------ *)
(* Sec VIII-C: QUDA comparison *)

let quda_compare () =
  section "Sec VIII-C: QUDA vs generated Dslash (same work, overlapping comms)";
  let row prec vol ours =
    Printf.printf "  %-3s V=%d^4: QUDA %.0f GFLOPS, generated %.0f GFLOPS (headroom %.2fx)\n"
      (match prec with Solvers.Quda_like.Sp -> "SP" | Solvers.Quda_like.Dp -> "DP")
      vol
      (Solvers.Quda_like.dslash_gflops_measured prec)
      ours
      (Solvers.Quda_like.dslash_gflops_measured prec /. ours)
  in
  row Solvers.Quda_like.Sp 40 (Solvers.Quda_like.generated_dslash_gflops Solvers.Quda_like.Sp);
  row Solvers.Quda_like.Dp 32 (Solvers.Quda_like.generated_dslash_gflops Solvers.Quda_like.Dp);
  Printf.printf "  (paper: 346 vs 197 = 1.76x SP; 171 vs 90 = 1.9x DP)\n"

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: HMC strong scaling *)

let fig7 () =
  section "Fig 7: HMC strong scaling on Blue Waters (V=40^3x256, 2+1 aniso clover)";
  let w = Perfmodel.Workload.production () in
  let bw = Perfmodel.Nodes.blue_waters_xk in
  let t c n = Perfmodel.Scaling.trajectory_time ~machine:bw ~config:c w ~nodes:n in
  Printf.printf "  %-6s %12s %12s %12s %10s %10s\n" "N" "CPU-only" "CPU+QUDA" "JIT+QUDA" "spd(CQ)"
    "spd(JQ)";
  List.iter
    (fun n ->
      Printf.printf "  %-6d %12.0f %12.0f %12.0f %10.2f %10.2f\n" n
        (t Perfmodel.Scaling.Cpu_only n) (t Perfmodel.Scaling.Cpu_quda n)
        (t Perfmodel.Scaling.Qdpjit_quda n)
        (Perfmodel.Scaling.speedup ~machine:bw w ~config:Perfmodel.Scaling.Cpu_quda ~nodes:n)
        (Perfmodel.Scaling.speedup ~machine:bw w ~config:Perfmodel.Scaling.Qdpjit_quda ~nodes:n))
    [ 128; 256; 400; 512; 800; 1600 ];
  Printf.printf "  node-hours at 128: CPU+QUDA %.0f vs QDP-JIT+QUDA %.0f (paper: 258 vs 52, ~5x)\n"
    (Perfmodel.Scaling.node_hours ~machine:bw ~config:Perfmodel.Scaling.Cpu_quda w ~nodes:128)
    (Perfmodel.Scaling.node_hours ~machine:bw ~config:Perfmodel.Scaling.Qdpjit_quda w ~nodes:128);
  Printf.printf "  (paper: speedups ~2.2x/1.8x CPU+QUDA, ~11.0x/3.7x QDP-JIT+QUDA at 128/800)\n"

let fig8 () =
  section "Fig 8: Blue Waters vs Titan (QDP-JIT+QUDA)";
  let w = Perfmodel.Workload.production () in
  Printf.printf "  %-6s %14s %14s\n" "GPUs" "Blue Waters" "Titan";
  List.iter
    (fun n ->
      Printf.printf "  %-6d %14.0f %14.0f\n" n
        (Perfmodel.Scaling.trajectory_time ~machine:Perfmodel.Nodes.blue_waters_xk
           ~config:Perfmodel.Scaling.Qdpjit_quda w ~nodes:n)
        (Perfmodel.Scaling.trajectory_time ~machine:Perfmodel.Nodes.titan
           ~config:Perfmodel.Scaling.Qdpjit_quda w ~nodes:n))
    [ 128; 256; 400; 512; 800 ];
  Printf.printf "  (paper: the two systems are hardly distinguishable)\n"

(* ------------------------------------------------------------------ *)
(* Sec III-D: JIT compilation overhead *)

let jit_overhead () =
  section "Sec III-D: driver JIT compile overhead per kernel";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let kernels =
    List.map
      (fun (name, expr, dest) ->
        ( name,
          Qdpjit.Codegen.build ~kname:("jo_" ^ name) ~dest_shape:dest.Field.shape ~expr
            ~nsites:(Geometry.volume geom) ~use_sitelist:false () ))
      (test_functions geom Shape.F64)
  in
  (* Add a dslash kernel, the largest in a trajectory. *)
  let u = Lqcd.Gauge.create_links geom in
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let dslash =
    Qdpjit.Codegen.build ~kname:"jo_dslash" ~dest_shape:psi.Field.shape
      ~expr:(Lqcd.Wilson.hopping_expr u psi) ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
  in
  let all = kernels @ [ ("dslash", dslash) ] in
  Printf.printf "  %-8s %8s %14s %16s\n" "kernel" "instrs" "model compile" "measured (this)";
  let total = ref 0.0 in
  List.iter
    (fun (name, built) ->
      let t0 = Unix.gettimeofday () in
      let compiled = Gpusim.Jit.compile built.Qdpjit.Codegen.text in
      let wall = Unix.gettimeofday () -. t0 in
      total := !total +. compiled.Gpusim.Jit.compile_time;
      Printf.printf "  %-8s %8d %12.3f s %14.6f s\n" name compiled.Gpusim.Jit.instructions
        compiled.Gpusim.Jit.compile_time wall)
    all;
  Printf.printf "  (paper: 0.05-0.22 s per kernel; ~200 kernels/trajectory => 10-30 s total)\n";
  Printf.printf "  modeled total for 200 kernels of this mix: %.0f s\n"
    (!total /. float_of_int (List.length all) *. 200.0);
  (* Middle-end scorecards, as recorded by the engine at compile time. *)
  let eng = Qdpjit.Engine.create ~mode:Gpusim.Device.Model_only ~fuse:false () in
  List.iter
    (fun (_, expr, dest) -> Qdpjit.Engine.eval eng dest expr)
    (test_functions geom Shape.F64);
  let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Qdpjit.Engine.eval eng out (Lqcd.Wilson.hopping_expr u psi);
  Printf.printf "\n  middle-end per-kernel stats (Engine.jit_stats, raw -> optimized):\n";
  Printf.printf "  %-10s %13s %13s %15s  passes\n" "kernel" "instrs" "regs(demand)" "load B/thread";
  List.iter
    (fun (s : Qdpjit.Engine.jit_stats) ->
      Printf.printf "  %-10s %5d ->%5d %5d ->%5d %6d ->%6d  %s\n" s.Qdpjit.Engine.kname
        s.Qdpjit.Engine.raw_instructions s.Qdpjit.Engine.opt_instructions
        s.Qdpjit.Engine.raw_registers s.Qdpjit.Engine.opt_registers
        s.Qdpjit.Engine.raw_load_bytes s.Qdpjit.Engine.opt_load_bytes
        (String.concat ","
           (List.map
              (fun (r : Ptx.Passes.report) ->
                Printf.sprintf "%s(%d->%d)" r.Ptx.Passes.pass r.Ptx.Passes.before
                  r.Ptx.Passes.after)
              s.Qdpjit.Engine.passes)))
    (Qdpjit.Engine.jit_stats eng)

(* ------------------------------------------------------------------ *)
(* Middle-end: raw vs optimized Table II kernels, with a JSON artifact *)

let jitopt () =
  section "JIT middle-end: raw vs optimized Table II kernels (+ dslash)";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let cases =
    let u = Lqcd.Gauge.create_links geom in
    let fm = Shape.lattice_fermion Shape.F64 in
    let psi = Field.create fm geom in
    test_functions geom Shape.F64
    @ [ ("dslash", Lqcd.Wilson.hopping_expr u psi, Field.create fm geom) ]
  in
  let rows =
    List.map
      (fun (name, expr, dest) ->
        let b =
          Qdpjit.Codegen.build ~kname:("opt_" ^ name) ~dest_shape:dest.Field.shape ~expr
            ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
        in
        let raw = b.Qdpjit.Codegen.raw and opt = b.Qdpjit.Codegen.kernel in
        let raw_a = Ptx.Analysis.kernel raw and opt_a = Ptx.Analysis.kernel opt in
        ( name,
          List.length raw.Ptx.Types.body,
          List.length opt.Ptx.Types.body,
          Ptx.Dataflow.register_demand raw,
          Ptx.Dataflow.register_demand opt,
          raw_a.Ptx.Analysis.load_bytes,
          opt_a.Ptx.Analysis.load_bytes,
          b.Qdpjit.Codegen.passes ))
      cases
  in
  Printf.printf "  %-8s %14s %14s %16s  passes\n" "kernel" "instructions" "regs(demand)"
    "load bytes/thr";
  List.iter
    (fun (name, ri, oi, rr, orr, rb, ob, passes) ->
      Printf.printf "  %-8s %6d ->%6d %6d ->%6d %7d ->%7d  %s\n" name ri oi rr orr rb ob
        (String.concat ","
           (List.sort_uniq compare (List.map (fun (r : Ptx.Passes.report) -> r.Ptx.Passes.pass) passes)));
      if oi > ri then failwith (name ^ ": optimized instruction count exceeds raw");
      if orr > rr then failwith (name ^ ": optimized register demand exceeds raw");
      if ob > rb then failwith (name ^ ": optimized load bytes exceed raw"))
    rows;
  let oc = open_out "BENCH_jitopt.json" in
  Printf.fprintf oc "{\n  \"kernels\": [\n";
  List.iteri
    (fun i (name, ri, oi, rr, orr, rb, ob, _) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"raw_instructions\": %d, \"opt_instructions\": %d, \"raw_registers\": %d, \"opt_registers\": %d, \"raw_load_bytes\": %d, \"opt_load_bytes\": %d}%s\n"
        name ri oi rr orr rb ob
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_jitopt.json\n"

(* ------------------------------------------------------------------ *)
(* Sec VII: auto-tuning trace *)

let autotune () =
  section "Sec VII: block-size auto-tuning on payload launches";
  let geom = Geometry.create [| 16; 16; 16; 16 |] in
  let eng = Qdpjit.Engine.create ~mode:Gpusim.Device.Model_only ~fuse:false () in
  let cases = test_functions geom Shape.F32 in
  let name, expr, dest = List.nth cases 1 in
  Printf.printf "  tuning kernel %s at V=16^4:\n" name;
  for i = 1 to 10 do
    let dev = Qdpjit.Engine.device eng in
    let before = Gpusim.Device.clock_ns dev in
    Qdpjit.Engine.eval eng dest expr;
    let ns = Gpusim.Device.clock_ns dev -. before in
    Printf.printf "    launch %2d: %8.1f us\n" i (ns /. 1000.0)
  done;
  Printf.printf "  (failed launches halve the block; probes stop on a 33%% slowdown)\n"

(* ------------------------------------------------------------------ *)
(* Ablations: design choices the paper discusses *)

let ablation () =
  section "Ablations: gauge compression (Sec VIII-C) and auto-tuning (Sec VII)";
  (* 1. Gauge compression: dslash bandwidth saved by 12-real links. *)
  let l = 24 in
  let geom = Geometry.create [| l; l; l; l |] in
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  let links = Array.init 4 (fun _ -> Field.create (Shape.lattice_color_matrix Shape.F64) geom) in
  let packed =
    Array.map (fun _ -> Field.create (Shape.compressed_color_matrix Shape.F64) geom) links
  in
  let time expr =
    let eng = Qdpjit.Engine.create ~mode:Gpusim.Device.Model_only ~fuse:false () in
    let out = Field.create (Shape.lattice_fermion Shape.F64) geom in
    for _ = 1 to 10 do
      Qdpjit.Engine.eval eng out expr
    done;
    let dev = Qdpjit.Engine.device eng in
    let before = Gpusim.Device.clock_ns dev in
    Qdpjit.Engine.eval eng out expr;
    Gpusim.Device.clock_ns dev -. before
  in
  let t_full = time (Lqcd.Wilson.hopping_expr links psi) in
  let t_comp = time (Lqcd.Wilson.hopping_expr_compressed packed psi) in
  let v = float_of_int (Geometry.volume geom) in
  Printf.printf "  dslash %d^4 DP: full gauge %.0f GFLOPS, 12-real %.0f GFLOPS (%.2fx)
" l
    (1320.0 *. v /. t_full) (1320.0 *. v /. t_comp) (t_full /. t_comp);
  Printf.printf "  (the flops-for-bandwidth trade behind part of QUDA's headroom)
";
  (* 2. Auto-tuning vs a fixed maximal block: pick a register-heavy kernel
     at a mid volume and compare the settled time against block = 1024. *)
  let geom16 = Geometry.create [| 16; 16; 16; 16 |] in
  let u1 = Field.create (Shape.lattice_color_matrix Shape.F64) geom16 in
  let u2 = Field.create (Shape.lattice_color_matrix Shape.F64) geom16 in
  let expr = Expr.mul (Expr.field u1) (Expr.field u2) in
  let built =
    Qdpjit.Codegen.build ~kname:"abl_tune" ~dest_shape:u1.Field.shape ~expr
      ~nsites:(Geometry.volume geom16) ~use_sitelist:false ()
  in
  let compiled = Gpusim.Jit.compile built.Qdpjit.Codegen.text in
  let machine = Gpusim.Machine.k20x_ecc_off in
  let nthreads = Geometry.volume geom16 in
  let t_at block =
    Gpusim.Timing.kernel_time_ns machine ~analysis:compiled.Gpusim.Jit.analysis
      ~regs_per_thread:compiled.Gpusim.Jit.regs_per_thread ~prec:compiled.Gpusim.Jit.prec
      ~nthreads ~block
  in
  let best_block =
    List.fold_left
      (fun acc b -> if t_at b < t_at acc then b else acc)
      1024 [ 512; 256; 128; 64; 32 ]
  in
  Printf.printf "  lcm at 16^4: fixed block 1024 -> %.1f us; tuned block %d -> %.1f us (%.2fx)
"
    (t_at 1024 /. 1e3) best_block (t_at best_block /. 1e3)
    (t_at 1024 /. t_at best_block);
  Printf.printf "  (weak block dependence above ~64 threads, as the paper observes)
"

(* ------------------------------------------------------------------ *)
(* Cross-eval kernel fusion: launches and global traffic of a CG solve *)

let assert_bit_identical what a b =
  if Field.volume a <> Field.volume b then failwith (what ^ ": volumes differ");
  for site = 0 to Field.volume a - 1 do
    let va = Field.get_site a ~site and vb = Field.get_site b ~site in
    Array.iteri
      (fun i v ->
        if Int64.bits_of_float v <> Int64.bits_of_float vb.(i) then
          failwith (what ^ ": solutions not bit-identical"))
      va
  done

let engine_config = function
  | `Unfused -> Qdpjit.Engine.create ~fuse:false ()
  | `Fused -> Qdpjit.Engine.create ~fuse:true ~fuse_reductions:false ()
  | `Fused_reduction -> Qdpjit.Engine.create ~fuse:true ~fuse_reductions:true ()

let fusion_bench () =
  section "Kernel fusion: Wilson CG, deferred queue + body splicing vs eval-at-a-time";
  let geom = Geometry.create [| 4; 4; 4; 2 |] in
  let shape = Shape.lattice_fermion Shape.F64 in
  let kappa = 0.115 in
  let run config =
    let eng = engine_config config in
    let st = Gpusim.Device.stats (Qdpjit.Engine.device eng) in
    let ops = Solvers.Ops.jit eng shape geom in
    let u = Lqcd.Gauge.create_links geom in
    Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:31L);
    let nop = Solvers.Ops.normal_op ops ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa u) in
    let b = Field.create shape geom in
    Field.fill_gaussian b (Prng.create ~seed:32L);
    let solve () =
      let x = Field.create shape geom in
      let t0 = Unix.gettimeofday () in
      let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-8 () in
      ignore (Qdpjit.Engine.synchronize eng);
      (r, x, Unix.gettimeofday () -. t0)
    in
    (* The first solve pays every one-time cost — building, optimizing
       and autotuning each kernel, including the large spliced fused
       bodies.  Time the second, steady-state solve (compile cost is
       reported apart from execution, as in the paper) and report the
       per-solve deltas of the cumulative device counters. *)
    let _, _, cold = solve () in
    (* Rewind the planner/scorecard counters so the reported fusion stats
       cover exactly the measured steady-state solves, not the cold one. *)
    Qdpjit.Engine.reset_stats eng;
    let l0 = st.Gpusim.Device.launches and ns0 = st.Gpusim.Device.kernel_ns in
    let b0 = Qdpjit.Engine.kernel_bytes_moved eng in
    let r, x, w1 = solve () in
    let launches = st.Gpusim.Device.launches - l0 in
    let bytes = Qdpjit.Engine.kernel_bytes_moved eng - b0 in
    let sim_ms = (st.Gpusim.Device.kernel_ns -. ns0) /. 1e6 in
    let _, _, w2 = solve () in
    (r, x, launches, bytes, min w1 w2, cold, sim_ms, Qdpjit.Engine.fusion_stats eng)
  in
  let rr, xr, lr, br, wr, cr, mr, sr = run `Fused_reduction in
  let rf, xf, lf, bf, wf, cf, mf, _ = run `Fused in
  let ru, xu, lu, bu, wu, cu, mu, _ = run `Unfused in
  if not (rr.Solvers.Cg.converged && rf.Solvers.Cg.converged && ru.Solvers.Cg.converged) then
    failwith "fusion: CG diverged";
  if rr.Solvers.Cg.iterations <> ru.Solvers.Cg.iterations
     || rf.Solvers.Cg.iterations <> ru.Solvers.Cg.iterations
  then failwith "fusion: iteration counts differ";
  assert_bit_identical "fusion(fused)" xf xu;
  assert_bit_identical "fusion(fused_reduction)" xr xu;
  if lf >= lu then failwith "fusion: no launch reduction";
  if lr >= lf then failwith "fusion: reduction fusion saved no launches";
  if bf >= bu then failwith "fusion: no global-traffic reduction";
  if br > bf then failwith "fusion: reduction fusion increased global traffic";
  let iters = float_of_int rr.Solvers.Cg.iterations in
  Printf.printf "  Wilson CG %s, %d iterations, solutions bit-identical across all 3 configs\n"
    (String.concat "x" (Array.to_list (Array.map string_of_int (Geometry.dims geom))))
    rr.Solvers.Cg.iterations;
  Printf.printf "  %-16s %10s %12s %16s %10s %10s %10s\n" "" "launches" "launch/iter"
    "kernel bytes" "sim ms" "wall s" "cold s";
  Printf.printf "  %-16s %10d %12.1f %16d %10.3f %10.2f %10.2f\n" "eval-at-a-time" lu
    (float_of_int lu /. iters) bu mu wu cu;
  Printf.printf "  %-16s %10d %12.1f %16d %10.3f %10.2f %10.2f\n" "fused" lf
    (float_of_int lf /. iters) bf mf wf cf;
  Printf.printf "  %-16s %10d %12.1f %16d %10.3f %10.2f %10.2f\n" "fused+reduction" lr
    (float_of_int lr /. iters) br mr wr cr;
  Printf.printf
    "  planner: %d groups fused, %d launches saved, %d load B + %d store B eliminated, %d fallbacks\n"
    sr.Qdpjit.Engine.fused_groups sr.Qdpjit.Engine.launches_saved
    sr.Qdpjit.Engine.eliminated_load_bytes sr.Qdpjit.Engine.eliminated_store_bytes
    sr.Qdpjit.Engine.fallbacks;
  (* Persistent JIT cache: the fused+reduction solve again, cache-cold
     (fresh dir, this engine populates it) then cache-warm (a second
     engine on the same dir replays every kernel without running the
     emitter, middle-end or driver JIT) — the second-process startup
     story.  REPRO_JIT_CACHE overrides the directory, which is how CI's
     cache-reuse smoke job persists it across bench invocations. *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qdpjit-fusion-cache-%d" (Unix.getpid ()))
  in
  (* Wall clock on shared CI machines is noisy, so the cold-vs-warm
     comparison is min-of-N against min-of-N: fresh engines are cheap to
     create against a warm cache, so the "cold" side can be resampled
     just like the steady side, and the two minima converge to the same
     value unless warm startup really does extra work (compiles). *)
  let run_cached ~steady () =
    let eng =
      Qdpjit.Engine.create ~fuse:true ~fuse_reductions:true
        ~jit_cache:(Jitcache.create cache_dir) ()
    in
    let ops = Solvers.Ops.jit eng shape geom in
    let u = Lqcd.Gauge.create_links geom in
    Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:31L);
    let nop = Solvers.Ops.normal_op ops ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa u) in
    let b = Field.create shape geom in
    Field.fill_gaussian b (Prng.create ~seed:32L);
    let solve () =
      let x = Field.create shape geom in
      let t0 = Unix.gettimeofday () in
      let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-8 () in
      ignore (Qdpjit.Engine.synchronize eng);
      (r, x, Unix.gettimeofday () -. t0)
    in
    let r, x, cold = solve () in
    let steadies = List.init steady (fun _ -> let _, _, w = solve () in w) in
    if not r.Solvers.Cg.converged then failwith "fusion: cached CG diverged";
    (x, cold, steadies, Qdpjit.Engine.kernels_built eng, Qdpjit.Engine.jit_cache_stats eng)
  in
  let minimum = List.fold_left min infinity in
  let cache_json =
    match run_cached ~steady:2 () with
    | _, _, _, _, None ->
        Printf.printf "  persistent JIT cache disabled (REPRO_JIT_CACHE=off); skipping\n";
        "null"
    | x_cc, cold_cc, steadies_cc, built_cc, Some cs_cc ->
        assert_bit_identical "fusion(cache-cold)" x_cc xu;
        let hits_cc = cs_cc.Jitcache.hits and stores_cc = cs_cc.Jitcache.stores in
        let warm_runs =
          List.init 4 (fun i ->
              match run_cached ~steady:(if i = 3 then 4 else 0) () with
              | x, c, s, b, Some cs -> (x, c, s, b, cs)
              | _ -> failwith "fusion: cache vanished between runs")
        in
        let cold_cw = minimum (List.map (fun (_, c, _, _, _) -> c) warm_runs) in
        let warm_cw = minimum (List.concat_map (fun (_, _, s, _, _) -> s) warm_runs) in
        let hits_cw = ref 0 and misses_cw = ref 0 and stores_cw = ref 0 in
        List.iteri
          (fun i (x, _, _, built, cs) ->
            assert_bit_identical "fusion(cache-warm)" x xu;
            if cs.Jitcache.hits = 0 then
              failwith (Printf.sprintf "fusion: warm engine %d hit nothing in the cache" i);
            if built <> 0 then
              failwith
                (Printf.sprintf "fusion: warm engine %d compiled %d kernels (want 0)" i built);
            hits_cw := !hits_cw + cs.Jitcache.hits;
            misses_cw := !misses_cw + cs.Jitcache.misses;
            stores_cw := !stores_cw + cs.Jitcache.stores)
          warm_runs;
        Printf.printf "  persistent JIT cache:\n";
        Printf.printf
          "    cache-cold: first solve %.2f s, steady %.2f s, %d kernels built, %d stores\n"
          cold_cc (minimum steadies_cc) built_cc stores_cc;
        Printf.printf
          "    cache-warm: first solve %.2f s (min of %d engines), steady %.2f s, 0 kernels \
           built, %d hits\n"
          cold_cw (List.length warm_runs) warm_cw !hits_cw;
        Printf.sprintf
          "{\n\
          \    \"cache_cold\": {\"cold_s\": %.3f, \"warm_s\": %.3f, \"kernels_built\": %d, \
           \"hits\": %d, \"misses\": %d, \"stores\": %d},\n\
          \    \"cache_warm\": {\"cold_s\": %.3f, \"warm_s\": %.3f, \"kernels_built\": 0, \
           \"hits\": %d, \"misses\": %d, \"stores\": %d}}"
          cold_cc (minimum steadies_cc) built_cc hits_cc cs_cc.Jitcache.misses stores_cc
          cold_cw warm_cw !hits_cw !misses_cw !stores_cw
  in
  let oc = open_out "BENCH_fusion.json" in
  Printf.fprintf oc
    "{\n\
    \  \"cg\": {\"iterations\": %d, \"bit_identical\": true,\n\
    \    \"unfused\": {\"launches\": %d, \"kernel_bytes\": %d, \"sim_ms\": %.6f, \"wall_s\": \
     %.3f, \"cold_s\": %.3f},\n\
    \    \"fused\": {\"launches\": %d, \"kernel_bytes\": %d, \"sim_ms\": %.6f, \"wall_s\": \
     %.3f, \"cold_s\": %.3f},\n\
    \    \"fused_reduction\": {\"launches\": %d, \"kernel_bytes\": %d, \"sim_ms\": %.6f, \
     \"wall_s\": %.3f, \"cold_s\": %.3f}},\n\
    \  \"planner\": {\"fused_groups\": %d, \"launches_saved\": %d,\n\
    \    \"eliminated_load_bytes\": %d, \"eliminated_store_bytes\": %d, \"fallbacks\": %d},\n\
    \  \"jit_cache\": %s\n\
     }\n"
    rr.Solvers.Cg.iterations lu bu mu wu cu lf bf mf wf cf lr br mr wr cr
    sr.Qdpjit.Engine.fused_groups
    sr.Qdpjit.Engine.launches_saved sr.Qdpjit.Engine.eliminated_load_bytes
    sr.Qdpjit.Engine.eliminated_store_bytes sr.Qdpjit.Engine.fallbacks cache_json;
  close_out oc;
  Printf.printf "  wrote BENCH_fusion.json\n"

(* ------------------------------------------------------------------ *)
(* Cross-subset fusion: the even-odd preconditioned solve interleaves
   even and odd assignments; grouping per (subset, geometry) run keeps
   those fusing inside their own checkerboard. *)

let fusion_eo_bench () =
  section "Kernel fusion (--eo): even-odd Wilson solve, cross-subset grouping";
  let geom = Geometry.create [| 4; 4; 4; 2 |] in
  let shape = Shape.lattice_fermion Shape.F64 in
  let kappa = 0.115 in
  let run config =
    let eng = engine_config config in
    let ops = Solvers.Ops.jit eng shape geom in
    let u = Lqcd.Gauge.create_links geom in
    Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:41L);
    let b = Field.create shape geom in
    Field.fill_gaussian b (Prng.create ~seed:42L);
    let x = Field.create shape geom in
    let r = Solvers.Eo_wilson.solve ops ~kappa u ~b ~x ~tol:1e-8 () in
    ignore (Qdpjit.Engine.synchronize eng);
    let launches = (Gpusim.Device.stats (Qdpjit.Engine.device eng)).Gpusim.Device.launches in
    (r, x, launches, Qdpjit.Engine.fusion_stats eng)
  in
  let rr, xr, lr, sr = run `Fused_reduction in
  let ru, xu, lu, _ = run `Unfused in
  if not (rr.Solvers.Eo_wilson.converged && ru.Solvers.Eo_wilson.converged) then
    failwith "fusion-eo: solve diverged";
  if rr.Solvers.Eo_wilson.iterations <> ru.Solvers.Eo_wilson.iterations then
    failwith "fusion-eo: iteration counts differ";
  assert_bit_identical "fusion-eo" xr xu;
  if lr >= lu then failwith "fusion-eo: no launch reduction";
  let groups = sr.Qdpjit.Engine.fused_groups and saved = sr.Qdpjit.Engine.launches_saved in
  if groups = 0 then failwith "fusion-eo: no fused groups in the checkerboarded solve";
  let avg_members = float_of_int (groups + saved) /. float_of_int groups in
  if avg_members <= 1.0 then failwith "fusion-eo: fused groups have a single member";
  Printf.printf
    "  eo Wilson solve %s: %d CG iterations on the even checkerboard, bit-identical\n"
    (String.concat "x" (Array.to_list (Array.map string_of_int (Geometry.dims geom))))
    rr.Solvers.Eo_wilson.iterations;
  Printf.printf "  launches: eval-at-a-time %d, fused+reduction %d\n" lu lr;
  Printf.printf "  planner: %d fused groups, %d launches saved, %.2f members/group\n" groups
    saved avg_members;
  let oc = open_out "BENCH_fusion_eo.json" in
  Printf.fprintf oc
    "{\n\
    \  \"eo\": {\"iterations\": %d, \"bit_identical\": true,\n\
    \    \"unfused\": {\"launches\": %d},\n\
    \    \"fused_reduction\": {\"launches\": %d}},\n\
    \  \"planner\": {\"fused_groups\": %d, \"launches_saved\": %d,\n\
    \    \"avg_members_per_fused_group\": %.4f, \"fallbacks\": %d}\n\
     }\n"
    rr.Solvers.Eo_wilson.iterations lu lr groups saved avg_members
    sr.Qdpjit.Engine.fallbacks;
  close_out oc;
  Printf.printf "  wrote BENCH_fusion_eo.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the real pipeline *)

let micro () =
  section "Bechamel: wall-clock of the pipeline stages (this machine)";
  let open Bechamel in
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let cases = test_functions geom Shape.F64 in
  let _, lcm_expr, lcm_dest = List.hd cases in
  let built () =
    Qdpjit.Codegen.build ~kname:"bench_lcm" ~dest_shape:lcm_dest.Field.shape ~expr:lcm_expr
      ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
  in
  let b = built () in
  let eng = Qdpjit.Engine.create ~fuse:false () in
  let cpu_dest = Field.create lcm_dest.Field.shape geom in
  let tests =
    [
      Test.make ~name:"codegen(lcm)" (Staged.stage (fun () -> ignore (built ())));
      Test.make ~name:"driver-jit(lcm)"
        (Staged.stage (fun () -> ignore (Gpusim.Jit.compile b.Qdpjit.Codegen.text)));
      Test.make ~name:"jit-eval(lcm,4^4)"
        (Staged.stage (fun () -> Qdpjit.Engine.eval eng lcm_dest lcm_expr));
      Test.make ~name:"cpu-eval(lcm,4^4)"
        (Staged.stage (fun () -> Qdp.Eval_cpu.eval cpu_dest lcm_expr));
      Test.make ~name:"zolotarev(deg10)"
        (Staged.stage (fun () -> ignore (Numerics.Zolotarev.inv_sqrt ~degree:10 ~lo:1e-4 ~hi:10.0)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-24s %14.1f ns/run\n" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Parallel VM: worker-domain sweep over the Table II kernels and the
   fused Wilson CG solve.  Results must be bit-identical at every worker
   count; wall time is the steady-state launch cost (kernels prebuilt). *)

let field_checksum fld =
  let h = ref 0xcbf29ce484222325L in
  for site = 0 to Field.volume fld - 1 do
    Array.iter
      (fun v -> h := Int64.mul (Int64.logxor !h (Int64.bits_of_float v)) 0x100000001b3L)
      (Field.get_site fld ~site)
  done;
  !h

let vmperf () =
  section "VM worker sweep: pre-decoded interpreter across 1..N domains";
  let geom = Geometry.create [| 8; 8; 8; 4 |] in
  let avail = Gpusim.Vm_backend.available_domains () in
  let workers = List.sort_uniq compare [ 1; 2; 4; avail ] in
  (* A sweep that asks for more workers than the host has domains still
     runs (and stays bit-identical), but its multicore timings are
     meaningless: the extra workers serialize on the same cores.  Say so
     loudly and stamp the JSON so downstream gates skip the speedup
     assertions instead of failing on them. *)
  let wmax = List.fold_left max 1 workers in
  let degraded = avail < wmax in
  if degraded then
    Printf.eprintf
      "vmperf: WARNING: only %d domain(s) available but sweeping up to %d workers;\n\
       vmperf: multicore timings on this host are DEGRADED (excess workers serialize)\n\
       vmperf: and scaling/speedup numbers from this run must not be gated on.\n\
       %!"
      avail wmax;
  let prec = Shape.F64 in
  let mk shape seed =
    let x = Field.create shape geom in
    Field.fill_gaussian x (Prng.create ~seed);
    x
  in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:51L);
  let cm = Shape.lattice_color_matrix prec
  and fm = Shape.lattice_fermion prec
  and sm = Shape.lattice_spin_matrix prec in
  let u1 = mk cm 52L and u2 = mk cm 53L and u3 = mk cm 54L in
  let p1 = mk fm 55L and p2 = mk fm 56L in
  let g2 = mk sm 57L and g3 = mk sm 58L in
  let ad = mk (Shape.clover_diag prec) 59L and at = mk (Shape.clover_tri prec) 60L in
  let f = Expr.field in
  let cases =
    [
      ("lcm", Expr.mul (f u2) (f u3), cm);
      ("upsi", Expr.mul (f u1) (f p2), fm);
      ("spmat", Expr.mul (f g2) (f g3), sm);
      ("matvec", Expr.add (Expr.mul (f u1) (f p1)) (Expr.mul (f u1) (f p2)), fm);
      ("clover", Expr.clover ~diag:(f ad) ~tri:(f at) (f p1), fm);
      ("dslash", Lqcd.Wilson.hopping_expr u p1, fm);
    ]
  in
  let reps = 4 in
  let run_kernels w =
    let eng = Qdpjit.Engine.create ~vm_domains:w ~fuse:false () in
    List.map
      (fun (name, expr, shape) ->
        let dest = Field.create shape geom in
        (* Warm evals build the kernel and let the block autotuner settle
           before the timed repetitions. *)
        for _ = 1 to 6 do
          Qdpjit.Engine.eval eng dest expr
        done;
        ignore (Qdpjit.Engine.synchronize eng);
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          Qdpjit.Engine.eval eng dest expr
        done;
        ignore (Qdpjit.Engine.synchronize eng);
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int reps in
        (name, wall_ms, field_checksum dest))
      cases
  in
  let max_iter = 20 in
  let run_cg w =
    let eng = Qdpjit.Engine.create ~vm_domains:w () in
    let ops = Solvers.Ops.jit eng fm geom in
    let nop = Solvers.Ops.normal_op ops ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa:0.115 u) in
    let b = mk fm 61L in
    let solve () =
      let x = Field.create fm geom in
      let t0 = Unix.gettimeofday () in
      let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-8 ~max_iter () in
      ignore (Qdpjit.Engine.synchronize eng);
      (r, x, Unix.gettimeofday () -. t0)
    in
    ignore (solve ());
    let r, x, wall = solve () in
    (r.Solvers.Cg.iterations, field_checksum x, wall)
  in
  let results = List.map (fun w -> (w, run_kernels w, run_cg w)) workers in
  (* Superinstruction A/B: re-time each kernel single-worker with the
     SoA executor forced on and forced off, interleaved on one engine
     (best of three timed blocks per strategy) so host noise hits both
     strategies alike — these are the numbers the --min-dslash-speedup
     CI gate holds, independent of the sweep timings above.  The two
     strategies' checksums must bit-match each other and the sweep. *)
  let soa_enabled = Gpusim.Vm.superinstructions_enabled () in
  let ab_blocks = 3 in
  let scalar_k, soa_k =
    let both =
      List.map
        (fun (name, expr, shape) ->
          let eng = Qdpjit.Engine.create ~vm_domains:1 ~fuse:false () in
          let dest = Field.create shape geom in
          for _ = 1 to 6 do
            Qdpjit.Engine.eval eng dest expr
          done;
          ignore (Qdpjit.Engine.synchronize eng);
          let time_block on =
            Gpusim.Vm.set_superinstructions on;
            let t0 = Unix.gettimeofday () in
            for _ = 1 to reps do
              Qdpjit.Engine.eval eng dest expr
            done;
            ignore (Qdpjit.Engine.synchronize eng);
            (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int reps
          in
          let soa_ms = ref infinity and sc_ms = ref infinity in
          for _ = 1 to ab_blocks do
            soa_ms := min !soa_ms (time_block true);
            sc_ms := min !sc_ms (time_block false)
          done;
          Gpusim.Vm.set_superinstructions true;
          Qdpjit.Engine.eval eng dest expr;
          ignore (Qdpjit.Engine.synchronize eng);
          let ck_soa = field_checksum dest in
          Gpusim.Vm.set_superinstructions false;
          Qdpjit.Engine.eval eng dest expr;
          ignore (Qdpjit.Engine.synchronize eng);
          let ck_sc = field_checksum dest in
          Gpusim.Vm.set_superinstructions soa_enabled;
          ((name, !sc_ms, ck_sc), (name, !soa_ms, ck_soa)))
        cases
    in
    (List.map fst both, List.map snd both)
  in
  let scalar_it, scalar_ck, scalar_cg_wall =
    Gpusim.Vm.set_superinstructions false;
    let r = run_cg 1 in
    Gpusim.Vm.set_superinstructions soa_enabled;
    r
  in
  (* Decode-time superinstruction plans for the same six kernels: how
     much of each body lives in fused spans, and the per-cta dispatch
     units per scalar per-item dispatch. *)
  let soa_stats =
    List.map
      (fun (name, expr, shape) ->
        let dest = Field.create shape geom in
        let b =
          Qdpjit.Codegen.build ~kname:("vp_" ^ name) ~dest_shape:dest.Field.shape ~expr
            ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
        in
        let c = Gpusim.Jit.compile b.Qdpjit.Codegen.text in
        (name, Gpusim.Vm.superinsn_stats c.Gpusim.Jit.program))
      cases
  in
  let dispatch_ratio (s : Gpusim.Vm.soa_stats) =
    if s.Gpusim.Vm.total = 0 then 1.0
    else
      float_of_int (s.Gpusim.Vm.units + (s.Gpusim.Vm.total - s.Gpusim.Vm.covered))
      /. float_of_int s.Gpusim.Vm.total
  in
  let _, base_k, (base_it, base_ck, _) = List.hd results in
  let kernels_identical =
    List.map
      (fun (name, _, ck0) ->
        ( name,
          List.for_all
            (fun (_, ks, _) ->
              List.exists (fun (n, _, ck) -> n = name && ck = ck0) ks)
            results ))
      base_k
  in
  let cg_identical =
    List.for_all (fun (_, _, (it, ck, _)) -> it = base_it && ck = base_ck) results
  in
  let scalar_identical =
    List.map
      (fun (name, _, ck0) ->
        ( name,
          List.exists (fun (n, _, ck) -> n = name && ck = ck0) scalar_k
          && List.exists (fun (n, _, ck) -> n = name && ck = ck0) soa_k ))
      base_k
  in
  let cg_scalar_identical = scalar_it = base_it && scalar_ck = base_ck in
  Printf.printf "  %s back-end, %d domain(s) available; workers swept: %s\n"
    Gpusim.Vm_backend.runtime avail
    (String.concat " " (List.map string_of_int workers));
  Printf.printf "  %-10s" "kernel";
  List.iter (fun w -> Printf.printf " %7s" (Printf.sprintf "w=%d ms" w)) workers;
  Printf.printf "  identical\n";
  List.iter
    (fun (name, _, _) ->
      Printf.printf "  %-10s" name;
      List.iter
        (fun (_, ks, _) ->
          let _, ms, _ = List.find (fun (n, _, _) -> n = name) ks in
          Printf.printf " %7.2f" ms)
        results;
      Printf.printf "  %b\n" (List.assoc name kernels_identical))
    base_k;
  Printf.printf "  %-10s" (Printf.sprintf "cg(%d it)" base_it);
  List.iter (fun (_, _, (_, _, wall)) -> Printf.printf " %7.0f" (wall *. 1e3)) results;
  Printf.printf "  %b\n" cg_identical;
  Printf.printf "\n  superinstructions %s (w=1 A/B vs scalar interpreter)\n"
    (if soa_enabled then "ON" else "OFF (REPRO_VM_SUPERINSN)");
  Printf.printf "  %-10s %9s %9s %8s %7s %7s %10s  identical\n" "kernel" "soa ms"
    "scalar ms" "speedup" "spans" "units" "disp.ratio";
  List.iter
    (fun (name, _, _) ->
      let _, soa_ms, _ = List.find (fun (n, _, _) -> n = name) soa_k in
      let _, sc_ms, _ = List.find (fun (n, _, _) -> n = name) scalar_k in
      let st = List.assoc name soa_stats in
      Printf.printf "  %-10s %9.2f %9.2f %7.2fx %7d %7d %10.4f  %b\n" name soa_ms sc_ms
        (sc_ms /. soa_ms) st.Gpusim.Vm.spans st.Gpusim.Vm.units (dispatch_ratio st)
        (List.assoc name scalar_identical))
    base_k;
  Printf.printf "  %-10s %9.0f %9.0f %7.2fx %36b\n"
    (Printf.sprintf "cg(%d it)" base_it)
    (let _, _, (_, _, wall) = List.hd results in
     wall *. 1e3)
    (scalar_cg_wall *. 1e3)
    (let _, _, (_, _, wall) = List.hd results in
     scalar_cg_wall /. wall)
    cg_scalar_identical;
  if not (cg_identical && List.for_all snd kernels_identical) then
    failwith "vmperf: results not bit-identical across worker counts";
  if not (cg_scalar_identical && List.for_all snd scalar_identical) then
    failwith "vmperf: superinstruction results not bit-identical to scalar interpreter";
  let oc = open_out "BENCH_vmperf.json" in
  let flist fmt xs = String.concat ", " (List.map (Printf.sprintf fmt) xs) in
  Printf.fprintf oc
    "{\n\
    \  \"runtime\": \"%s\", \"available_domains\": %d, \"degraded\": %b, \"geometry\": \"%s\",\n\
    \  \"superinsn_enabled\": %b,\n\
    \  \"workers\": [%s],\n\
    \  \"kernels\": [\n"
    Gpusim.Vm_backend.runtime avail degraded
    (String.concat "x" (Array.to_list (Array.map string_of_int (Geometry.dims geom))))
    soa_enabled
    (flist "%d" (List.map (fun (w, _, _) -> w) results));
  List.iteri
    (fun i (name, _, _) ->
      let walls =
        List.map
          (fun (_, ks, _) ->
            let _, ms, _ = List.find (fun (n, _, _) -> n = name) ks in
            ms)
          results
      in
      let _, scalar_ms, _ = List.find (fun (n, _, _) -> n = name) scalar_k in
      let _, soa_ms, _ = List.find (fun (n, _, _) -> n = name) soa_k in
      let st = List.assoc name soa_stats in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"wall_ms\": [%s], \"bit_identical\": %b, \"soa_ms\": %.4f, \
         \"scalar_ms\": %.4f, \"scalar_bit_identical\": %b, \"superinsns\": %d, \
         \"fused_units\": %d, \"covered_instrs\": %d, \"decoded_instrs\": %d, \
         \"dispatch_ratio\": %.4f}%s\n"
        name (flist "%.4f" walls)
        (List.assoc name kernels_identical)
        soa_ms scalar_ms
        (List.assoc name scalar_identical)
        st.Gpusim.Vm.spans st.Gpusim.Vm.units st.Gpusim.Vm.covered st.Gpusim.Vm.total
        (dispatch_ratio st)
        (if i = List.length base_k - 1 then "" else ","))
    base_k;
  Printf.fprintf oc
    "  ],\n\
    \  \"cg\": {\"iterations\": %d, \"max_iter\": %d, \"wall_s\": [%s], \"bit_identical\": \
     %b, \"scalar_wall_s\": %.4f, \"scalar_bit_identical\": %b}\n\
     }\n"
    base_it max_iter
    (flist "%.4f" (List.map (fun (_, _, (_, _, w)) -> w) results))
    cg_identical scalar_cg_wall cg_scalar_identical;
  close_out oc;
  Printf.printf "  wrote BENCH_vmperf.json\n"

(* ------------------------------------------------------------------ *)
(* Multi-tenant serving: N Wilson CG tenants round-robin over one engine
   with a shared persistent JIT cache, against a dedicated engine per
   tenant.  The tenants' solutions must be bit-identical to their serial
   twins, the shared engine must start fully cache-warm (the serial
   baseline populated the dir) and compile nothing, and closing every
   session must release every field the tenants created. *)

let serve_bench () =
  section "Serving: Wilson CG tenants, one engine + shared JIT cache vs dedicated engines";
  let geom = Geometry.create [| 4; 4; 4; 2 |] in
  let shape = Shape.lattice_fermion Shape.F64 in
  let kappa = 0.115 in
  let nsessions = 8 in
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qdpjit-serve-cache-%d" (Unix.getpid ()))
  in
  let gauge_seed i = Int64.of_int (100 + i) and rhs_seed i = Int64.of_int (200 + i) in
  (* One tenant's workload against the given ops; [adopt] claims every
     field the tenant creates (the serving path points it at the
     session's arena, so teardown can account for all of them). *)
  let setup ops adopt i =
    let u = Lqcd.Gauge.create_links geom in
    Array.iter adopt u;
    Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:(gauge_seed i));
    let nop = Solvers.Ops.normal_op ops ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa u) in
    let b = ops.Solvers.Ops.fresh () in
    Field.fill_gaussian b (Prng.create ~seed:(rhs_seed i));
    (nop, b)
  in
  let solve ops (nop, b) =
    let x = ops.Solvers.Ops.fresh () in
    let r = Solvers.Cg.solve ops nop ~b ~x ~tol:1e-8 () in
    if not r.Solvers.Cg.converged then failwith "serve: CG diverged";
    (r.Solvers.Cg.iterations, field_checksum x)
  in
  (* Serial baseline: a dedicated engine per tenant, all sharing the
     cache dir — tenant 0 populates it, the rest start warm. *)
  let serial_tenant i =
    let eng = Qdpjit.Engine.create ~jit_cache:(Jitcache.create cache_dir) () in
    let ops = Solvers.Ops.jit eng shape geom in
    let t0 = Unix.gettimeofday () in
    let iters, ck = solve ops (setup ops (fun _ -> ()) i) in
    ignore (Qdpjit.Engine.synchronize eng);
    let wall = Unix.gettimeofday () -. t0 in
    let st = Gpusim.Device.stats (Qdpjit.Engine.device eng) in
    ( iters,
      ck,
      st.Gpusim.Device.launches,
      st.Gpusim.Device.kernel_ns /. 1e6,
      wall,
      Qdpjit.Engine.kernels_built eng )
  in
  let serial = Array.init nsessions serial_tenant in
  (* Served run: one engine, one session per tenant, two tasks each
     (setup, solve) drained under fair round-robin. *)
  let srv = Serve.create ~jit_cache:(Jitcache.create cache_dir) () in
  let results = Array.make nsessions (0, 0L) in
  let t0 = Unix.gettimeofday () in
  let sessions =
    Array.init nsessions (fun i ->
        let sess = Serve.open_session ~name:(Printf.sprintf "tenant%d" i) srv in
        let ops = Solvers.Ops.jit (Serve.engine srv) shape geom in
        let ops =
          { ops with Solvers.Ops.fresh = (fun () -> Serve.create_field sess shape geom) }
        in
        let work = ref None in
        Serve.submit ~label:"setup" sess (fun () ->
            work := Some (setup ops (Serve.adopt_field sess) i));
        Serve.submit ~label:"solve" sess (fun () -> results.(i) <- solve ops (Option.get !work));
        sess)
  in
  let tasks = Serve.run srv in
  let serve_wall = Unix.gettimeofday () -. t0 in
  let eng = Serve.engine srv in
  let warm_built = Qdpjit.Engine.kernels_built eng in
  let session_stats = Array.map Serve.stats sessions in
  Array.iter Serve.close_session sessions;
  let resident_after = Memcache.resident_count (Qdpjit.Engine.memcache eng) in
  (* Every tenant must match its dedicated-engine twin bit for bit. *)
  Array.iteri
    (fun i (iters, ck) ->
      let s_iters, s_ck, _, _, _, _ = serial.(i) in
      if iters <> s_iters then failwith (Printf.sprintf "serve: tenant%d iteration drift" i);
      if ck <> s_ck then failwith (Printf.sprintf "serve: tenant%d not bit-identical" i))
    results;
  let serial_sim = Array.fold_left (fun a (_, _, _, ms, _, _) -> a +. ms) 0.0 serial in
  let serial_launches = Array.fold_left (fun a (_, _, l, _, _, _) -> a + l) 0 serial in
  let serial_wall = Array.fold_left (fun a (_, _, _, _, w, _) -> a +. w) 0.0 serial in
  let serve_sim =
    Array.fold_left (fun a st -> a +. st.Serve.s_sim_ms) 0.0 session_stats
  in
  let serve_launches =
    Array.fold_left (fun a st -> a + st.Serve.s_launches) 0 session_stats
  in
  let queue_wait =
    Array.fold_left (fun a st -> a +. st.Serve.s_queue_wait_s) 0.0 session_stats
  in
  let sim_ratio = serve_sim /. serial_sim in
  let _, _, _, _, _, first_built = serial.(0) in
  Printf.printf "  %d tenants, %d tasks, solutions bit-identical to dedicated engines\n"
    nsessions tasks;
  Printf.printf "  %-10s %8s %10s %12s %10s %12s\n" "" "kernels" "launches" "sim ms" "wall s"
    "queue-wait s";
  Printf.printf "  %-10s %8d %10d %12.3f %10.2f %12s\n" "serial x8" first_built serial_launches
    serial_sim serial_wall "-";
  Printf.printf "  %-10s %8d %10d %12.3f %10.2f %12.3f\n" "served" warm_built serve_launches
    serve_sim serve_wall queue_wait;
  Printf.printf "  aggregate sim time ratio served/serial: %.3f (shared autotune + kernel pool)\n"
    sim_ratio;
  Printf.printf "  per session:\n";
  Array.iter
    (fun st ->
      Printf.printf
        "    %-10s tasks %d, launches %4d, sim %7.3f ms, queue-wait %.3f s, kernel bytes %d \
         (f16 %d / f32 %d / f64 %d)\n"
        st.Serve.s_name st.Serve.s_tasks st.Serve.s_launches st.Serve.s_sim_ms
        st.Serve.s_queue_wait_s st.Serve.s_kernel_bytes st.Serve.s_kernel_bytes_f16
        st.Serve.s_kernel_bytes_f32 st.Serve.s_kernel_bytes_f64)
    session_stats;
  let cache_json =
    match Qdpjit.Engine.jit_cache_stats eng with
    | None ->
        Printf.printf "  persistent JIT cache disabled (REPRO_JIT_CACHE=off)\n";
        "null"
    | Some cs ->
        if cs.Jitcache.hits = 0 then failwith "serve: shared engine hit nothing in the cache";
        if warm_built <> 0 then
          failwith
            (Printf.sprintf "serve: cache-warm shared engine compiled %d kernels (want 0)"
               warm_built);
        Printf.printf "  jit cache: %d hits, %d misses, %d stores, %d corrupt, %d evictions\n"
          cs.Jitcache.hits cs.Jitcache.misses cs.Jitcache.stores cs.Jitcache.corrupt
          cs.Jitcache.evictions;
        Printf.sprintf
          "{\"hits\": %d, \"misses\": %d, \"stores\": %d, \"corrupt\": %d, \"evictions\": %d}"
          cs.Jitcache.hits cs.Jitcache.misses cs.Jitcache.stores cs.Jitcache.corrupt
          cs.Jitcache.evictions
  in
  if resident_after <> 0 then
    failwith
      (Printf.sprintf "serve: %d fields still resident after closing every session"
         resident_after);
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"wilson_cg_%s_dp\", \"sessions\": %d, \"tasks\": %d,\n\
    \  \"bit_identical\": true,\n\
    \  \"serial\": {\"sim_ms_total\": %.6f, \"launches_total\": %d, \"wall_s_total\": %.3f, \
     \"kernels_built_first\": %d},\n\
    \  \"serve\": {\"sim_ms_total\": %.6f, \"launches_total\": %d, \"wall_s\": %.3f, \
     \"kernels_built\": %d, \"queue_wait_s_total\": %.4f, \"sim_ratio_vs_serial\": %.4f},\n\
    \  \"sessions_detail\": [\n"
    (String.concat "x" (Array.to_list (Array.map string_of_int (Geometry.dims geom))))
    nsessions tasks serial_sim serial_launches serial_wall first_built serve_sim serve_launches
    serve_wall warm_built queue_wait sim_ratio;
  Array.iteri
    (fun i st ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"tasks\": %d, \"launches\": %d, \"sim_ms\": %.6f, \
         \"queue_wait_s\": %.4f, \"run_s\": %.4f, \"kernel_bytes\": %d, \
         \"kernel_bytes_f16\": %d, \"kernel_bytes_f32\": %d, \"kernel_bytes_f64\": %d}%s\n"
        st.Serve.s_name st.Serve.s_tasks st.Serve.s_launches st.Serve.s_sim_ms
        st.Serve.s_queue_wait_s st.Serve.s_run_s st.Serve.s_kernel_bytes
        st.Serve.s_kernel_bytes_f16 st.Serve.s_kernel_bytes_f32 st.Serve.s_kernel_bytes_f64
        (if i = nsessions - 1 then "" else ","))
    session_stats;
  Printf.fprintf oc
    "  ],\n  \"jit_cache\": %s,\n  \"resident_after_close\": %d\n}\n"
    cache_json resident_after;
  close_out oc;
  Printf.printf "  wrote BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)
(* Precision tiers: the same Wilson normal-operator solve at f64, f32
   and f16 storage.  Pure-f64 CG is the baseline; f32 runs QUDA-style
   defect-correction; f16 runs reliable-update CG.  Every scheme must
   reach the same f64 tolerance, be bit-identical across VM worker
   counts and the CPU reference, and the f16 scheme must move markedly
   less modeled global traffic than the f64 baseline. *)

let precision_bench () =
  section "Precision tiers: Wilson normal-op CG at f64 / f32 / f16 storage";
  let geom = Geometry.create [| 4; 4; 4; 2 |] in
  let shape64 = Shape.lattice_fermion Shape.F64 in
  let kappa = 0.115 and tol = 1e-10 in
  (* ±0 payloads differ harmlessly between Eval_cpu and the VM (the CPU
     path reaches +0.0 through its fma convention), so canonicalize
     zeros before hashing; everything else must match bit for bit. *)
  let canon_checksum fld =
    let h = ref 0xcbf29ce484222325L in
    for site = 0 to Field.volume fld - 1 do
      Array.iter
        (fun v ->
          let bits = if v = 0.0 then 0L else Int64.bits_of_float v in
          h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L)
        (Field.get_site fld ~site)
    done;
    !h
  in
  (* One scheme on one backend: build the operator (plus its lowered-
     precision twin where the scheme needs one), call [mark] once setup
     is done so measured counters cover the solve alone, then solve. *)
  let run_scheme backend scheme ~mark =
    let ops shape =
      match backend with
      | `Cpu -> Solvers.Ops.cpu shape geom
      | `Jit eng -> Solvers.Ops.jit eng shape geom
    in
    let evalf d e =
      match backend with
      | `Cpu -> Qdp.Eval_cpu.eval d e
      | `Jit eng -> Qdpjit.Engine.eval eng d e
    in
    let u = Lqcd.Gauge.create_links geom in
    Lqcd.Gauge.random_gauge ~epsilon:0.3 u (Prng.create ~seed:71L);
    let ops64 = ops shape64 in
    let nop64 = Solvers.Ops.normal_op ops64 ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa u) in
    let lowered prec =
      let ul = Array.map (fun _ -> Field.create (Shape.lattice_color_matrix prec) geom) u in
      Array.iteri (fun mu d -> evalf d (Expr.field u.(mu))) ul;
      let opsl = ops (Shape.lattice_fermion prec) in
      (opsl, Solvers.Ops.normal_op opsl ~apply_m:(Lqcd.Wilson.wilson_expr ~kappa ul))
    in
    let b = Field.create shape64 geom in
    Field.fill_gaussian b (Prng.create ~seed:72L);
    let x = Field.create shape64 geom in
    mark ();
    let iters, aux, residual, converged =
      match scheme with
      | `F64 ->
          let r = Solvers.Cg.solve ops64 nop64 ~b ~x ~tol () in
          (r.Solvers.Cg.iterations, 0, r.Solvers.Cg.residual, r.Solvers.Cg.converged)
      | `F32 ->
          let ops32, nop32 = lowered Shape.F32 in
          let r = Solvers.Mixed.solve ops64 nop64 ops32 nop32 ~b ~x ~tol () in
          ( r.Solvers.Mixed.inner_iterations,
            r.Solvers.Mixed.outer_iterations,
            r.Solvers.Mixed.residual,
            r.Solvers.Mixed.converged )
      | `F16 ->
          let ops16, nop16 = lowered Shape.F16 in
          let r = Solvers.Mixed.solve_reliable ops64 nop64 ops16 nop16 ~b ~x ~tol () in
          ( r.Solvers.Mixed.iterations,
            r.Solvers.Mixed.reliable_updates,
            r.Solvers.Mixed.residual,
            r.Solvers.Mixed.converged )
    in
    (match backend with
    | `Jit eng -> ignore (Qdpjit.Engine.synchronize eng)
    | `Cpu -> ());
    (iters, aux, residual, converged, canon_checksum x)
  in
  let schemes =
    [
      ("cg_f64", `F64, "f64 CG");
      ("dc_f32", `F32, "f32 defect-correction");
      ("ru_f16", `F16, "f16 reliable-update");
    ]
  in
  let measured =
    List.map
      (fun (name, scheme, desc) ->
        let eng = Qdpjit.Engine.create () in
        let st = Gpusim.Device.stats (Qdpjit.Engine.device eng) in
        let b0 = ref 0 and t0 = ref (0, 0, 0) and ns0 = ref 0.0 in
        let mark () =
          b0 := Qdpjit.Engine.kernel_bytes_moved eng;
          t0 := Qdpjit.Engine.kernel_bytes_by_prec eng;
          ns0 := st.Gpusim.Device.kernel_ns
        in
        let iters, aux, residual, converged, ck = run_scheme (`Jit eng) scheme ~mark in
        if not converged then failwith ("precision: " ^ name ^ " did not converge");
        if residual > tol then
          failwith
            (Printf.sprintf "precision: %s missed the f64 tolerance (%.2e > %.0e)" name residual
               tol);
        let bytes = Qdpjit.Engine.kernel_bytes_moved eng - !b0 in
        let f16a, f32a, f64a = Qdpjit.Engine.kernel_bytes_by_prec eng in
        let f16z, f32z, f64z = !t0 in
        let sim_ms = (st.Gpusim.Device.kernel_ns -. !ns0) /. 1e6 in
        (* The identical solve at 1 worker, 4 workers and on the CPU
           reference must be bit-identical to the measured run. *)
        List.iter
          (fun backend ->
            let _, _, _, c2, ck2 = run_scheme backend scheme ~mark:(fun () -> ()) in
            if not c2 then failwith ("precision: " ^ name ^ " diverged on a replay backend");
            if ck2 <> ck then
              failwith ("precision: " ^ name ^ " not bit-identical across backends"))
          [
            `Jit (Qdpjit.Engine.create ~vm_domains:1 ());
            `Jit (Qdpjit.Engine.create ~vm_domains:4 ());
            `Cpu;
          ];
        (name, desc, iters, aux, residual, bytes, (f16a - f16z, f32a - f32z, f64a - f64z), sim_ms))
      schemes
  in
  let bytes_of n =
    let _, _, _, _, _, b, _, _ = List.find (fun (m, _, _, _, _, _, _, _) -> m = n) measured in
    b
  in
  let ratio = float_of_int (bytes_of "cg_f64") /. float_of_int (bytes_of "ru_f16") in
  Printf.printf "  all schemes reach tol %.0e; solutions bit-identical across vm1/vm4/cpu\n" tol;
  Printf.printf "  %-22s %6s %6s %10s %14s %32s %9s\n" "" "iters" "aux" "residual" "kernel bytes"
    "f16 / f32 / f64 bytes" "sim ms";
  List.iter
    (fun (_, desc, iters, aux, residual, bytes, (bf16, bf32, bf64), sim_ms) ->
      Printf.printf "  %-22s %6d %6d %10.1e %14d %12d/%9d/%9d %9.3f\n" desc iters aux residual
        bytes bf16 bf32 bf64 sim_ms)
    measured;
  Printf.printf "  traffic: f16 reliable-update moves %.2fx less than pure f64 CG\n" ratio;
  if ratio < 1.8 then
    failwith (Printf.sprintf "precision: f16 scheme saved only %.2fx traffic (need >= 1.8x)" ratio);
  (* Production-scale projection through the performance model: only the
     solver's byte constants change with storage precision (iteration
     counts are measured, not modeled). *)
  let w = Perfmodel.Workload.production () in
  let proj prec =
    Perfmodel.Scaling.trajectory_time ~machine:Perfmodel.Nodes.blue_waters_xk
      ~config:Perfmodel.Scaling.Qdpjit_quda
      (Perfmodel.Workload.at_solver_precision prec w)
      ~nodes:128
  in
  Printf.printf
    "  production model (BW, 128 nodes): solver storage f64 %.0f s/traj, f32 %.0f, f16 %.0f\n"
    (proj Shape.F64) (proj Shape.F32) (proj Shape.F16);
  let oc = open_out "BENCH_precision.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"wilson_normal_cg_%s\", \"tol\": %.1e,\n\
    \  \"bit_identical\": true,\n\
    \  \"bytes_ratio_f64_over_f16\": %.4f,\n\
    \  \"model_trajectory_s\": {\"f64\": %.3f, \"f32\": %.3f, \"f16\": %.3f},\n\
    \  \"schemes\": [\n"
    (String.concat "x" (Array.to_list (Array.map string_of_int (Geometry.dims geom))))
    tol ratio (proj Shape.F64) (proj Shape.F32) (proj Shape.F16);
  List.iteri
    (fun i (name, _, iters, aux, residual, bytes, (bf16, bf32, bf64), sim_ms) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"iterations\": %d, \"aux_iterations\": %d, \"converged\": true, \
         \"residual\": %.6e, \"kernel_bytes\": %d, \"bytes_f16\": %d, \"bytes_f32\": %d, \
         \"bytes_f64\": %d, \"sim_ms\": %.6f}%s\n"
        name iters aux residual bytes bf16 bf32 bf64 sim_ms
        (if i = List.length measured - 1 then "" else ","))
    measured;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_precision.json\n"

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig4", fun () -> bandwidth_sweep Shape.F32);
    ("fig5", fun () -> bandwidth_sweep Shape.F64);
    ("fig6", fig6);
    ("streams", streams_bench);
    ("quda", quda_compare);
    ("fig7", fig7);
    ("fig8", fig8);
    ("jit", jit_overhead);
    ("jitopt", jitopt);
    ("autotune", autotune);
    ("ablation", ablation);
    ("fusion", fusion_bench);
    ("fusion-eo", fusion_eo_bench);
    ("vmperf", vmperf);
    ("serve", serve_bench);
    ("precision", precision_bench);
    ("micro", micro);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* [fusion --eo] is sugar for the fusion-eo section. *)
  let names =
    if List.mem "--eo" args then
      List.map (fun a -> if a = "fusion" then "fusion-eo" else a) args
      |> List.filter (fun a -> a <> "--eo")
    else args
  in
  let unknown = List.filter (fun n -> not (List.mem_assoc n sections)) names in
  if unknown <> [] then begin
    Printf.printf "unknown section(s): %s; available: %s\n" (String.concat " " unknown)
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  let to_run =
    match names with
    | [] -> List.filter (fun (n, _) -> n <> "fusion-eo") sections
    | names -> List.filter (fun (n, _) -> List.mem n names) sections
  in
  List.iter (fun (_, f) -> f ()) to_run;
  Printf.printf "\nAll requested benchmark sections completed.\n"

