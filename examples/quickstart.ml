(* Quickstart: the expression layer, the code generation pipeline, and the
   automated memory management in one walk-through.

   Builds the nearest-neighbour covariant derivative of the paper's Fig. 1,

     psi = u[mu] * shift(phi, mu, FORWARD)
         + shift(adj(u[mu]) * phi, mu, BACKWARD)

   shows its AST (Fig. 3) and the generated PTX, evaluates it on both the
   CPU reference and the simulated GPU, and prints the cache statistics.

   Run: dune exec examples/quickstart.exe *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let () =
  Printf.printf "QDP-JIT/PTX quickstart\n======================\n\n";
  (* A 4^4 lattice with one gauge link field and a fermion. *)
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let rng = Prng.create ~seed:2026L in
  let u = Field.create ~name:"u" (Shape.lattice_color_matrix Shape.F64) geom in
  let phi = Field.create ~name:"phi" (Shape.lattice_fermion Shape.F64) geom in
  for site = 0 to Geometry.volume geom - 1 do
    Field.set_site u ~site (Linalg.Su3.random_su3 rng)
  done;
  Field.fill_gaussian phi rng;

  (* The Fig. 1 expression (mu = 0). *)
  let mu = 0 in
  let expr =
    Expr.add
      (Expr.mul (Expr.field u) (Expr.shift (Expr.field phi) ~dim:mu ~dir:1))
      (Expr.shift (Expr.mul (Expr.adj (Expr.field u)) (Expr.field phi)) ~dim:mu ~dir:(-1))
  in
  Printf.printf "Expression AST (cf. Fig. 3 of the paper):\n%s\n" (Expr.render expr);

  (* The PTX the code generator emits for it. *)
  let built =
    Qdpjit.Codegen.build ~kname:"quickstart_deriv" ~dest_shape:(Expr.shape expr) ~expr
      ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
  in
  let lines = String.split_on_char '\n' built.Qdpjit.Codegen.text in
  Printf.printf "Generated PTX (%d instructions; first 25 lines):\n" (List.length built.Qdpjit.Codegen.kernel.Ptx.Types.body);
  List.iteri (fun i l -> if i < 25 then Printf.printf "  %s\n" l) lines;
  Printf.printf "  ...\n\n";

  (* Evaluate on the original (CPU) implementation... *)
  let psi_cpu = Field.create ~name:"psi_cpu" (Shape.lattice_fermion Shape.F64) geom in
  Qdp.Eval_cpu.eval psi_cpu expr;

  (* ... and through the full JIT pipeline on the simulated device. *)
  let engine = Qdpjit.Engine.create () in
  let psi_jit = Field.create ~name:"psi_jit" (Shape.lattice_fermion Shape.F64) geom in
  Qdpjit.Engine.eval engine psi_jit expr;

  let diff = Qdp.Eval_cpu.norm2 (Expr.sub (Expr.field psi_cpu) (Expr.field psi_jit)) in
  Printf.printf "CPU vs JIT |difference|^2 : %g\n" diff;
  Printf.printf "norm2(psi)                : %.6f (both paths)\n\n"
    (Qdpjit.Engine.norm2 engine (Expr.field psi_jit));

  (* Kernel cache behaviour: same structure, different fields = no rebuild. *)
  let phi2 = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian phi2 rng;
  let expr2 =
    Expr.add
      (Expr.mul (Expr.field u) (Expr.shift (Expr.field phi2) ~dim:mu ~dir:1))
      (Expr.shift (Expr.mul (Expr.adj (Expr.field u)) (Expr.field phi2)) ~dim:mu ~dir:(-1))
  in
  Qdpjit.Engine.eval engine psi_jit expr2;
  Printf.printf "kernels built so far      : %d (second eval reused the cached kernel)\n"
    (Qdpjit.Engine.kernels_built engine);
  Printf.printf "modeled driver-JIT time   : %.3f s (paper: 0.05-0.22 s per kernel)\n\n"
    (Qdpjit.Engine.jit_seconds engine);

  (* Memory-management statistics (Sec. IV). *)
  let mc = Memcache.stats (Qdpjit.Engine.memcache engine) in
  Printf.printf "software cache: uploads=%d hits=%d pageouts=%d spills=%d\n" mc.Memcache.uploads
    mc.Memcache.hits mc.Memcache.pageouts mc.Memcache.spills;
  let dev = Qdpjit.Engine.device engine in
  let st = Gpusim.Device.stats dev in
  Printf.printf "device: launches=%d, kernel time=%.1f us, h2d=%d B, d2h=%d B\n"
    st.Gpusim.Device.launches
    (st.Gpusim.Device.kernel_ns /. 1e3)
    st.Gpusim.Device.h2d_bytes st.Gpusim.Device.d2h_bytes;

  (* Touching a field on the host pages device-dirty data back
     transparently (the Sec. IV access hooks). *)
  let v = Field.get psi_jit ~site:0 ~spin:0 ~color:0 ~reality:0 in
  Printf.printf "host read of psi[0]       : %.6f (auto page-out happened behind the scenes)\n" v;
  Printf.printf "\nDone.\n"
