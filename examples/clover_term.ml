(* The clover term (Sec. VI-A): the custom user-defined operation that
   mixes spin and color index spaces.

   Standard QDP++ cannot express A(x) = c + (c_sw/4) sigma_munu F_munu
   because its index spaces are strictly separated; the code-generation
   process supports it through the packed Table I (lower part) types:
   two Hermitian 6x6 chirality blocks stored as 6 real diagonal entries
   plus 15 complex lower-triangular entries each.

   This example packs the clover term from the gauge field's field
   strength, validates the packed application against an independently
   built dense sigma.F expression, shows the generated kernel, and runs
   everything through the JIT engine.

   Run: dune exec examples/clover_term.exe *)

module Shape = Layout.Shape
module Geometry = Layout.Geometry
module Field = Qdp.Field
module Expr = Qdp.Expr

let () =
  Printf.printf "Clover term: custom spin-color-mixing operation\n";
  Printf.printf "===============================================\n\n";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let rng = Prng.create ~seed:99L in
  let u = Lqcd.Gauge.create_links geom in
  Lqcd.Gauge.random_gauge ~epsilon:0.4 u rng;
  let psi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian psi rng;

  let engine = Qdpjit.Engine.create () in
  let eval dest e = Qdpjit.Engine.eval engine dest e in

  (* Pack A = c_id + (c_sw/4) sum sigma.F from the links; the field
     strength is computed on the device, the 6x6 block assembly host-side
     (as Chroma does). *)
  let csw = 1.3 and c_id = 1.0 in
  Printf.printf "packing clover term (c_sw = %.2f) from clover-leaf field strength...\n" csw;
  let cl = Lqcd.Clover.pack ~eval ~csw ~c_id u in
  Printf.printf "  diag storage: %s (%d dof/site)\n"
    (Shape.to_string cl.Lqcd.Clover.diag.Field.shape)
    (Shape.dof cl.Lqcd.Clover.diag.Field.shape);
  Printf.printf "  tri  storage: %s (%d dof/site)\n\n"
    (Shape.to_string cl.Lqcd.Clover.tri.Field.shape)
    (Shape.dof cl.Lqcd.Clover.tri.Field.shape);

  (* Apply through the packed custom operation... *)
  let packed = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval packed (Lqcd.Clover.apply_expr cl psi);

  (* ...and through the independent dense sigma.F construction. *)
  let dense = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval dense (Lqcd.Clover.apply_dense_expr ~eval ~csw ~c_id u psi);

  let diff = Qdpjit.Engine.norm2 engine (Expr.sub (Expr.field packed) (Expr.field dense)) in
  let norm = Qdpjit.Engine.norm2 engine (Expr.field dense) in
  Printf.printf "packed vs dense application: |diff|^2 = %.3e (|A psi|^2 = %.4g)\n\n" diff norm;

  (* Hermiticity of the clover operator. *)
  let phi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  Field.fill_gaussian phi rng;
  let aphi = Field.create (Shape.lattice_fermion Shape.F64) geom in
  eval aphi (Lqcd.Clover.apply_expr cl phi);
  let lhs = Qdpjit.Engine.inner engine (Expr.field psi) (Expr.field aphi) in
  let rhs = Qdpjit.Engine.inner engine (Expr.field packed) (Expr.field phi) in
  Printf.printf "hermiticity: <psi, A phi> = (%.6g, %.6g), <A psi, phi> = (%.6g, %.6g)\n\n"
    (fst lhs) (snd lhs) (fst rhs) (snd rhs);

  (* The generated kernel for the packed application (Table II's "clover"
     test function): flop/byte should match the paper's 0.525. *)
  let built =
    Qdpjit.Codegen.build ~kname:"clover_apply"
      ~dest_shape:(Shape.lattice_fermion Shape.F64)
      ~expr:(Lqcd.Clover.apply_expr cl psi)
      ~nsites:(Geometry.volume geom) ~use_sitelist:false ()
  in
  let a = Ptx.Analysis.kernel built.Qdpjit.Codegen.kernel in
  Printf.printf "generated kernel: %d instructions, %d flops, %d bytes/site => flop/byte %.3f\n"
    a.Ptx.Analysis.instructions a.Ptx.Analysis.flops
    (a.Ptx.Analysis.load_bytes + a.Ptx.Analysis.store_bytes)
    (Ptx.Analysis.flop_per_byte a);
  Printf.printf "(paper Table II: clover flop/byte = 0.525)\n"
